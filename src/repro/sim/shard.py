"""Sharded multi-core simulation of large meshes (conservative parallel DES).

The single-process kernel dispatches one event at a time, so a
thousand-node mesh with hundreds of flows is bounded by one core.  This
module splits a mesh into ``N`` spatial shards, runs each shard's nodes
in its own worker process, and keeps the composition *byte-identical*
to the single-process run — the oracle kernel stays the ground truth
and the ``shard-equivalence`` CI job enforces the identity at 1, 2 and
4 shards.

How it stays exact
==================

**Lookahead.**  Every builder behind a :class:`ShardRecipe` gives each
node ``PhyParams.tx_turnaround > 0``: the rx->tx switch between the
moment :meth:`repro.phy.radio.Radio.transmit` *commits* a frame and its
first bit reaching the air.  All transmit paths in the stack are
``skip_spi`` (data frames pre-load via ``Radio.load``; link ACKs are
hardware-generated), so the commit->air gap is exactly
``tx_turnaround`` — the conservative lookahead ``delta``.  A shard
cannot be affected by a foreign frame sooner than ``delta`` after that
frame was committed, and :meth:`_ShardState.on_commit` raises if any
future code path ever commits closer to the air than that.

**Windows.**  The coordinator advances all workers in lock-stepped
windows.  At each barrier it knows every worker's next pending event
time and every not-yet-delivered cross-shard frame ("ghost"), takes the
minimum ``m`` of all of them and opens the window ``[now, m + delta)``
via :meth:`Simulator.run_exclusive`.  Every event dispatched inside the
window has time ``>= m``, so any frame it commits reaches the air at
``>= m + delta`` — at or after the next barrier, where it is shipped to
the shards that can hear it and injected with ``schedule_at`` before
the next window runs.  A final exclusive window up to ``until`` plus
one inclusive ``run(until=until)`` step finishes a phase exactly like
the oracle's ``run(until)`` does.

**Full replicas.**  Every worker builds the *entire* network from the
recipe (deterministic in the seed), then mutes non-owned nodes: the
shard's :class:`ShardMedium` delivers frames only to owned receivers,
so a muted node never receives, never transmits, and never draws from
its RNG streams.  Fault schedules are armed in every replica, so a
remote sender's crash/reboot state is mirrored exactly where its ghost
frames land.  Carrier sense and collision marking use the full
adjacency, and ghost frames join ``Medium._active`` like local ones, so
the channel physics is whole in every shard.

**Merging.**  Each node's events, per-node metrics and flow bytes are
taken from its owner shard only; replica-identical unlabelled metrics
(fault injections) come from shard 0.  The merged trace is sorted by
``(time, node, per-node occurrence)`` — a canonical order both the
oracle trace and any shard count reproduce.  Exact float *ties* between
a foreign frame's air start and a local event fall back to scheduling
sequence numbers in the oracle, so ghosts are injected with a
fractional sequence key reconstructed from their *commit* instant (see
:class:`_WorkerSim`) — scheduling them with barrier-time numbers
demonstrably inverts hidden-terminal collision ties at thousand-node
scale.  The equivalence gate exists to catch any residual coincidence
loudly rather than let it drift silently.

What is refused
===============

Sharding is only offered where the ownership argument above is
airtight: mesh builders (``grid``/``random``) without a cloud host,
full fidelity on the oracle kernel (``accel`` is refused), per-node RNG
only (global-stream chaos kinds — bursty loss, uniform loss, frame
corruption — are refused; link flaps, node reboots and clock drift are
replica-deterministic and allowed).

Checkpoint/resume reuses :class:`repro.sim.checkpoint.Checkpoint`: at a
barrier every worker snapshots its replica, and the coordinator adds
the recipe, clock and the in-flight cross-shard frames, so a resumed
run continues byte-identically — including frames mid-air across a
shard boundary at the checkpoint instant.
"""

from __future__ import annotations

import argparse
import bisect
import heapq
import json
import multiprocessing
import os
import pickle
import sys
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.experiments.workload import (
    BulkTransfer,
    FlowSpec,
    FlowSet,
    GoodputMeter,
    SensorStream,
    jain_fairness,
)
from repro.faults import FaultInjector, FaultSchedule
from repro.net.node import NodeConfig
from repro.phy.medium import Medium, Transmission
from repro.phy.params import PhyParams
from repro.sim import metrics as _metrics
from repro.sim.checkpoint import Checkpoint
from repro.sim.engine import Event, SimulationError, Simulator
from repro.sim.metrics import diff_snapshots

#: header magic of a coordinator checkpoint blob
MAGIC = "repro-shard-checkpoint-v1"

#: chaos kinds whose injections are a pure function of the schedule (no
#: global RNG stream), hence identical in every replica
SAFE_CHAOS_KINDS = frozenset({"link_flap", "node_reboot", "clock_drift"})

#: 802.15.4 aTurnaroundTime — the physically-grounded default lookahead
DEFAULT_TURNAROUND = 192e-6

#: worker reply wait (seconds) before the coordinator declares it dead
_WORKER_TIMEOUT = 900.0


class ShardError(Exception):
    """A sharded run was mis-configured or diverged from its contract."""


class ShardWorkerDeath(ShardError):
    """A worker process died or stopped answering the window protocol.

    The coordinator's self-healing path (``heal=True``) catches exactly
    this — a crash or hang is recoverable by respawn-and-replay, while
    a worker *error* (a deterministic exception inside the replica)
    would simply reproduce on replay and stays fatal."""


# ----------------------------------------------------------------------
# recipe
# ----------------------------------------------------------------------
@dataclass
class ShardRecipe:
    """A self-contained, picklable description of one sharded experiment.

    Workers rebuild the whole network from this alone, so everything a
    build needs — builder, seed, flows, TCP parameters, chaos schedule —
    must live here (never in closures or ambient process state).
    """

    builder: str = "grid"  # "grid" | "random"
    builder_kwargs: Dict[str, Any] = field(default_factory=dict)
    flows: List[FlowSpec] = field(default_factory=list)
    base_port: int = 9000
    params: Optional[object] = None  # TcpParams for senders
    receiver_params: Optional[object] = None
    #: commit->air gap = the conservative lookahead (must be > 0)
    tx_turnaround: float = DEFAULT_TURNAROUND
    #: fault-schedule spec dict (SAFE_CHAOS_KINDS only), or None
    chaos: Optional[Dict[str, Any]] = None
    capture_trace: bool = False
    capture_metrics: bool = False

    def lookahead(self) -> float:
        """The conservative window bound ``delta`` (seconds)."""
        return float(self.tx_turnaround)

    def validate(self) -> None:
        """Raise :class:`ShardError` unless this recipe is shardable."""
        if self.builder not in ("grid", "random"):
            raise ShardError(
                f"builder {self.builder!r} is not shardable "
                f"(expected 'grid' or 'random')"
            )
        if not self.tx_turnaround > 0.0:
            raise ShardError(
                "sharding needs tx_turnaround > 0: the commit->air gap "
                "is the lookahead that makes conservative windows sound"
            )
        kw = self.builder_kwargs
        if kw.get("with_cloud"):
            raise ShardError("cloud-attached meshes are not shardable "
                             "(the wired link is a global rendezvous)")
        if kw.get("accel"):
            raise ShardError("shards run on the oracle kernel only "
                             "(accel=True is refused)")
        if kw.get("fidelity", "full") != "full":
            raise ShardError("hybrid fidelity warps the clock globally "
                             "and is not shardable")
        if kw.get("node_config") is not None:
            raise ShardError("node_config is owned by the shard tier "
                             "(it injects the tx_turnaround PHY profile)")
        if self.builder == "grid":
            if "rows" not in kw or "cols" not in kw:
                raise ShardError("grid builder needs rows= and cols=")
        else:
            if "num_nodes" not in kw:
                raise ShardError("random builder needs num_nodes=")
        for index, spec in enumerate(self.flows):
            if spec.kind not in ("bulk", "sensor"):
                raise ShardError(
                    f"flow {index}: kind {spec.kind!r} is not shardable")
            if spec.dst_is_cloud:
                raise ShardError(
                    f"flow {index}: cloud destinations are not shardable")
            if spec.src == spec.dst:
                raise ShardError(f"flow {index}: src == dst == {spec.src}")
        if self.chaos is not None:
            FaultSchedule.from_dict(self.chaos)  # structural validation
            for entry in self.chaos.get("faults", []):
                kind = entry.get("kind")
                if kind not in SAFE_CHAOS_KINDS:
                    raise ShardError(
                        f"chaos kind {kind!r} draws from a global RNG "
                        f"stream and is not shardable (allowed: "
                        f"{sorted(SAFE_CHAOS_KINDS)})"
                    )


def build_network(recipe: ShardRecipe):
    """Build the recipe's network (full replica) and arm its chaos.

    Returns ``(net, injector)``; deterministic in the recipe alone, so
    every worker and the oracle construct identical object graphs.
    """
    from repro.experiments.topology import build_grid_mesh, build_random_mesh

    config = NodeConfig(phy=PhyParams(tx_turnaround=recipe.tx_turnaround))
    kwargs = dict(recipe.builder_kwargs)
    kwargs["node_config"] = config
    if recipe.builder == "grid":
        net = build_grid_mesh(**kwargs)
    else:
        net = build_random_mesh(**kwargs)
    injector = None
    if recipe.chaos is not None:
        # Armed before any TCP stack exists (flows launch later), the
        # ordering clock_drift needs; armed in *every* replica so ghost
        # senders crash and reboot exactly like their owned originals.
        injector = FaultInjector(net, FaultSchedule.from_dict(recipe.chaos))
        injector.arm()
    return net, injector


def recipe_positions(recipe: ShardRecipe) -> Dict[int, Tuple[float, float]]:
    """Node positions the recipe's builder will use, without building.

    The shard planner needs the geometry up front; this mirrors the
    builders' placement logic exactly (same formulas, same RNG draws).
    """
    import math

    from repro.experiments.topology import _draw_random_positions
    from repro.sim.rng import RngStreams

    kw = recipe.builder_kwargs
    if recipe.builder == "grid":
        rows, cols = kw["rows"], kw["cols"]
        spacing = kw.get("spacing", 8.0)
        return {
            r * cols + c: (c * spacing, r * spacing)
            for r in range(rows) for c in range(cols)
        }
    num_nodes = kw["num_nodes"]
    comm_range = kw.get("comm_range", 10.0)
    side = kw.get("area")
    if side is None:
        side = comm_range * 0.55 * math.sqrt(num_nodes)
    return _draw_random_positions(
        RngStreams(kw.get("seed", 0)), num_nodes, side, comm_range,
        kw.get("max_tries", 64), f"random_mesh(n={num_nodes})",
    )


def plan_shards(
    positions: Dict[int, Tuple[float, float]],
    comm_range: float,
    shards: int,
) -> List[List[int]]:
    """Partition nodes into ``shards`` spatial bands along the x axis.

    Preferred cut lines follow the spatial-index cell columns (width
    ``comm_range``), which keeps most radio neighborhoods inside one
    shard and the ghost traffic low.  When there are fewer populated
    columns than shards, nodes are split into equal-count bands instead.
    Any partition is *correct* (cross-shard frames travel as ghosts);
    the plan only shapes how much crosses.
    """
    if shards < 1:
        raise ShardError(f"need at least one shard (got {shards})")
    if shards > len(positions):
        raise ShardError(
            f"{shards} shards for {len(positions)} nodes (need >= 1 "
            f"node per shard)"
        )
    ordered = sorted(positions, key=lambda n: (positions[n][0],
                                               positions[n][1], n))
    if shards == 1:
        return [ordered]
    columns: Dict[int, List[int]] = {}
    for nid in ordered:
        columns.setdefault(int(positions[nid][0] // comm_range),
                           []).append(nid)
    col_keys = sorted(columns)
    if len(col_keys) < shards:
        n = len(ordered)
        return [ordered[k * n // shards:(k + 1) * n // shards]
                for k in range(shards)]
    bands: List[List[int]] = []
    remaining = len(ordered)
    cursor = 0
    for band_index in range(shards):
        bands_left = shards - band_index
        quota = remaining / bands_left
        band: List[int] = []
        while cursor < len(col_keys):
            # must leave at least one column per remaining band
            cols_left = len(col_keys) - cursor
            if band and cols_left <= bands_left - 1:
                break
            size = len(columns[col_keys[cursor]])
            if band and len(band) + size > 1.5 * quota:
                break
            band.extend(columns[col_keys[cursor]])
            cursor += 1
            if len(band) >= quota:
                break
        bands.append(band)
        remaining -= len(band)
    # any trailing columns (rounding) join the last band
    while cursor < len(col_keys):
        bands[-1].extend(columns[col_keys[cursor]])
        cursor += 1
    return bands


# ----------------------------------------------------------------------
# shard-local medium
# ----------------------------------------------------------------------
class ShardMedium(Medium):
    """A :class:`Medium` that delivers only to this shard's nodes.

    Installed onto an already-built medium by :func:`shard_adopt` (class
    swap — the registered radios, links and caches carry over).  Carrier
    sense, collision marking and the ``_active`` list keep the *full*
    topology: a shard must hear foreign frames (ghosts) exactly like
    local ones; it just never delivers them to nodes it does not own —
    the owner shard performs that delivery (and its per-receiver
    accounting) itself.
    """

    def _build_cache(self):
        sets = super()._build_cache()
        owned = self._shard_owned
        radios = self._neighbor_radios
        assert radios is not None
        self._neighbor_radios = {
            sender: [(rcv_id, radio) for rcv_id, radio in hearers
                     if rcv_id in owned]
            for sender, hearers in radios.items()
        }
        return sets

    def ghost_begin(self, sender_id: int, frame: object,
                    air_time: float) -> None:
        """Put a foreign shard's committed frame on this shard's air.

        Mirrors :meth:`Medium.begin_transmission` *without* the sender's
        metrics/trace (those belong to the sender's owner shard) and
        with the owner-side ``powered`` guard: if the replicated fault
        schedule crashed the sender before air start, the owner's
        ``_start_air`` dropped the frame, so the ghost must vanish too.
        """
        radio = self.radios[sender_id]
        if not radio.powered:
            return
        now = self.sim.now
        tx = Transmission(radio, frame, now, now + air_time)
        if self._active:
            sets = self._neighbor_sets
            if sets is None:
                sets = self._build_cache()
            pairs = self._pair_overlap
            for other in self._active:
                other_id = other.sender.node_id
                key = (sender_id, other_id)
                both = pairs.get(key)
                if both is None:
                    both = sets[sender_id] & sets[other_id]
                    both.discard(sender_id)
                    both.discard(other_id)
                    pairs[key] = both
                    pairs[(other_id, sender_id)] = both
                if both:
                    tx.spoiled |= both
                    other.spoiled |= both
        self._active.append(tx)
        self.sim.schedule_unref(air_time, self._end_transmission, tx)


def shard_adopt(medium: Medium, owned: FrozenSet[int]) -> None:
    """Turn a built medium into this shard's :class:`ShardMedium`."""
    if not medium.use_cache:
        raise ShardError("sharding requires the medium adjacency cache")
    medium.__class__ = ShardMedium
    medium._shard_owned = frozenset(owned)
    medium._invalidate_cache()


# ----------------------------------------------------------------------
# worker-side kernel: ghost tie ordering
# ----------------------------------------------------------------------
class _WorkerSim(Simulator):
    """The oracle kernel plus the shard worker's ghost-ordering extras.

    Byte-identity across shard counts needs more than delivering ghosts
    at the right *time*: when a foreign frame's air start exactly ties a
    local event, the oracle breaks the tie by sequence number — and the
    foreign ``_start_air`` got its number at *commit* time, possibly
    before local events scheduled later in the same window.  A worker
    that numbers ghosts at the barrier hands them too-late sequence
    numbers and inverts such ties (observed at scale as flipped
    hidden-terminal collision marking).

    The cure: the dispatch loops below (byte-identical to the base
    class's otherwise) also log ``(instant, seq counter)`` at each new
    dispatch instant of the window, and :meth:`schedule_ghost` derives a
    *fractional* sequence key from the ghost's commit instant —
    ``seq_after(commit) - 0.5`` — which heap-sorts exactly where the
    oracle's commit-time integer would: after everything scheduled at
    dispatch instants ``<= commit``, before everything scheduled later.
    Ghosts within one instant keep their coordinator order (commit, air
    start, sender) via a per-worker ``1e-9`` ordinal, which also keeps
    heap keys unique.  The one residual ambiguity is *intra-instant*:
    events a committing callback schedules after its ``transmit()`` call
    but at the same dispatch instant are indistinguishable from it here.
    """

    def _init_shard_log(self) -> None:
        self._log_t: List[float] = []
        self._log_s: List[int] = []
        self._log_base = self._seq
        self._ghost_ord = 0

    def begin_seqlog(self) -> None:
        """Start a window's (instant -> seq) log.

        Called after the barrier's ghosts are scheduled (they look up
        the *previous* window's log — their frames committed there) and
        before the window runs.
        """
        self._log_t = []
        self._log_s = []
        self._log_base = self._seq

    def schedule_ghost(self, air_start: float, commit: float,
                       fn, *args) -> Event:
        """Schedule a ghost with the commit instant's fractional seq key."""
        if air_start < self.now:
            raise SimulationError(
                f"ghost air start t={air_start} before now={self.now}")
        i = bisect.bisect_right(self._log_t, commit) - 1
        base = self._log_s[i] if i >= 0 else self._log_base
        self._ghost_ord += 1
        key = base - 0.5 + self._ghost_ord * 1e-9
        ev = Event(air_start, key, fn, args)
        ev.sim = self
        heapq.heappush(self._queue, (air_start, key, ev))
        return ev

    def run(self, until: Optional[float] = None) -> None:
        """Base-class ``run`` plus the per-instant seq logging."""
        self._running = True
        self._stopped = False
        self._run_until = until
        queue = self._queue
        heappop = heapq.heappop
        heappush = heapq.heappush
        limit = float("inf") if until is None else until
        hook = self.on_event
        processed = 0
        log_t = self._log_t
        log_s = self._log_s
        last: Optional[float] = None
        try:
            while queue and not self._stopped:
                time = queue[0][0]
                if time > limit:
                    break
                ev = heappop(queue)[2]
                if ev.cancelled:
                    self.cancelled_count -= 1
                    continue
                if time != last:
                    if last is not None:
                        log_t.append(last)
                        log_s.append(self._seq)
                    last = time
                self.now = time
                processed += 1
                interval = ev.interval
                if interval is None:
                    ev.fired = True
                else:
                    ev.time = time + interval
                    seq = self._seq
                    self._seq = seq + 1
                    ev.seq = seq
                    heappush(queue, (ev.time, seq, ev))
                if hook is not None:
                    hook(ev)
                ev.fn(*ev.args)
            if until is not None and self.now < until and not self._stopped:
                self.now = until
        finally:
            if last is not None:
                log_t.append(last)
                log_s.append(self._seq)
            self.events_processed += processed
            self._running = False
            self._run_until = None

    def run_exclusive(self, limit: float) -> None:
        """Base-class ``run_exclusive`` plus the per-instant seq logging."""
        self._running = True
        self._stopped = False
        self._run_until = limit
        queue = self._queue
        heappop = heapq.heappop
        heappush = heapq.heappush
        hook = self.on_event
        processed = 0
        log_t = self._log_t
        log_s = self._log_s
        last: Optional[float] = None
        try:
            while queue and not self._stopped:
                time = queue[0][0]
                if time >= limit:
                    break
                ev = heappop(queue)[2]
                if ev.cancelled:
                    self.cancelled_count -= 1
                    continue
                if time != last:
                    if last is not None:
                        log_t.append(last)
                        log_s.append(self._seq)
                    last = time
                self.now = time
                processed += 1
                interval = ev.interval
                if interval is None:
                    ev.fired = True
                else:
                    ev.time = time + interval
                    seq = self._seq
                    self._seq = seq + 1
                    ev.seq = seq
                    heappush(queue, (ev.time, seq, ev))
                if hook is not None:
                    hook(ev)
                ev.fn(*ev.args)
            if self.now < limit and not self._stopped:
                self.now = limit
        finally:
            if last is not None:
                log_t.append(last)
                log_s.append(self._seq)
            self.events_processed += processed
            self._running = False
            self._run_until = None


# ----------------------------------------------------------------------
# per-worker state
# ----------------------------------------------------------------------
class _ShardState:
    """Commit collector plus shard bookkeeping (a checkpoint root)."""

    def __init__(self, sim, index: int, owned: FrozenSet[int],
                 owner_of: Dict[int, int],
                 neighbor_sets: Dict[int, set], delta: float):
        self.sim = sim
        self.index = index
        self.owned = frozenset(owned)
        self.owner_of = dict(owner_of)
        self.delta = delta
        #: commits of the current window: (commit time, air_start,
        #: sender, frame, air_time, target shard tuple)
        self.pending: List[Tuple[float, float, int, object, float,
                                 Tuple[int, ...]]] = []
        self.wall = 0.0
        # Shards a frame from each owned sender can reach, from the t=0
        # adjacency.  Fault flaps only *remove* edges afterwards, so the
        # static snapshot is a sound superset: at worst a ghost is
        # shipped to a shard where nobody hears it any more.
        self._targets: Dict[int, Tuple[int, ...]] = {}
        for nid in self.owned:
            hearers = neighbor_sets.get(nid, ())
            targets = {self.owner_of[h] for h in hearers
                       if h in self.owner_of}
            targets.discard(index)
            self._targets[nid] = tuple(sorted(targets))

    def on_commit(self, sender_id: int, frame: object, air_start: float,
                  air_time: float) -> None:
        """``Medium.tx_commit_hook``: record a local frame commitment."""
        targets = self._targets.get(sender_id)
        if targets is None:
            raise ShardError(
                f"shard {self.index}: non-owned node {sender_id} "
                f"transmitted — a muted replica received traffic "
                f"(ownership invariant broken)"
            )
        if air_start + 1e-12 < self.sim.now + self.delta:
            raise ShardError(
                f"shard {self.index}: node {sender_id} committed a frame "
                f"{air_start - self.sim.now:.2e}s before air, inside the "
                f"lookahead {self.delta:.2e}s — the conservative window "
                f"contract is broken"
            )
        if targets:
            self.pending.append(
                (self.sim.now, air_start, sender_id, frame, air_time,
                 targets))


class _ListenerHalf:
    """The receiver half of a flow whose sender lives in another shard.

    Mirrors exactly what :class:`BulkTransfer`/:class:`SensorStream` do
    on the receiver side: listen on the flow's port and meter delivered
    bytes.  Bound methods only, so checkpoints clone it cleanly.
    """

    def __init__(self, sim, stack, port: int, receiver_params):
        self.meter = GoodputMeter(sim)
        stack.listen(port, self._on_accept, params=receiver_params)

    def _on_accept(self, conn) -> None:
        conn.on_data = self.meter.on_data


class _WorkerFlows:
    """This shard's slice of the recipe's flow set.

    Construction mirrors :class:`repro.experiments.workload.FlowSet`
    call-for-call for every flow touching an owned node (same global
    port numbering, same launch scheduling, same stack construction),
    and skips flows whose endpoints are both foreign — their activity
    never reaches this shard's nodes.
    """

    def __init__(self, net, recipe: ShardRecipe, owned: FrozenSet[int]):
        self.net = net
        self.sim = net.sim
        self.specs: List[FlowSpec] = list(recipe.flows)
        self.params = recipe.params
        self.receiver_params = recipe.receiver_params
        self._owned = frozenset(owned)
        self._stacks: Dict[int, object] = {}
        self.drivers: Dict[int, object] = {}
        self.listeners: Dict[int, _ListenerHalf] = {}
        self.ports: List[int] = []
        self._measuring = False
        for index, spec in enumerate(self.specs):
            if spec.src not in net.nodes or spec.dst not in net.nodes:
                raise ShardError(
                    f"flow {index}: unknown node in {spec.src}->{spec.dst}")
            port = (spec.port if spec.port is not None
                    else recipe.base_port + index)
            self.ports.append(port)
            if spec.src not in self._owned and spec.dst not in self._owned:
                continue
            if spec.start > 0:
                self.sim.schedule(spec.start, self._launch, index)
            else:
                self._launch(index)

    def stack_for(self, node_id: int):
        from repro.core.socket_api import TcpStack

        stack = self._stacks.get(node_id)
        if stack is None:
            node = self.net.nodes[node_id]
            stack = TcpStack(self.sim, node.ipv6, node_id,
                             cpu=node.radio.cpu, sleepy=node.sleepy)
            self._stacks[node_id] = stack
        return stack

    def _launch(self, index: int) -> None:
        spec = self.specs[index]
        receiver_params = (spec.receiver_params or self.receiver_params
                           or spec.params or self.params)
        if spec.src in self._owned:
            # Sender side: the full driver, exactly as FlowSet builds
            # it.  The receiver stack may be a muted replica's —
            # harmless: its listener never sees a frame, the real
            # accept happens in the destination's owner shard.
            sender = self.stack_for(spec.src)
            receiver = self.stack_for(spec.dst)
            common = dict(
                port=self.ports[index],
                params=spec.params or self.params,
                receiver_params=receiver_params,
                dst_is_cloud=False,
            )
            if spec.kind == "bulk":
                driver = BulkTransfer(self.sim, sender, receiver,
                                      receiver_id=spec.dst, **common)
            else:
                driver = SensorStream(self.sim, sender, receiver,
                                      receiver_id=spec.dst,
                                      report_bytes=spec.report_bytes,
                                      interval=spec.interval, **common)
            self.drivers[index] = driver
            if self._measuring:
                driver.meter.start()
        else:
            # Receiver side only: the sender's SYN arrives as a ghost.
            listener = _ListenerHalf(
                self.sim, self.stack_for(spec.dst), self.ports[index],
                receiver_params,
            )
            self.listeners[index] = listener
            if self._measuring:
                listener.meter.start()

    def start_metering(self) -> None:
        self._measuring = True
        for driver in self.drivers.values():
            driver.meter.start()
        for listener in self.listeners.values():
            listener.meter.start()

    def collect(self) -> List[Dict[str, Any]]:
        """Per-flow partials; the coordinator merges across shards."""
        out: List[Dict[str, Any]] = []
        for index, spec in enumerate(self.specs):
            entry: Dict[str, Any] = {"index": index}
            if spec.src in self._owned:
                driver = self.drivers.get(index)
                entry["launched"] = driver is not None
                entry["connected"] = (driver.connected
                                      if driver is not None else False)
                entry["errors"] = (list(driver.errors)
                                   if driver is not None else [])
            if spec.dst in self._owned:
                driver = self.drivers.get(index)
                listener = self.listeners.get(index)
                if listener is not None:
                    entry["bytes"] = listener.meter.bytes
                elif driver is not None:
                    entry["bytes"] = driver.meter.bytes
                else:
                    entry["bytes"] = 0
            out.append(entry)
        return out


def _cross_in_flight(medium: Medium, state: _ShardState) -> int:
    """Foreign (ghost) frames currently on this shard's air."""
    owned = state.owned
    return sum(1 for tx in medium._active
               if tx.sender.node_id not in owned)


# ----------------------------------------------------------------------
# worker process
# ----------------------------------------------------------------------
def _build_worker(payload: Dict[str, Any]):
    recipe: ShardRecipe = payload["recipe"]
    observe = recipe.capture_trace or recipe.capture_metrics
    if observe:
        _metrics.auto_attach(True, capture_trace=recipe.capture_trace,
                             trace_capacity=None)
    try:
        net, injector = build_network(recipe)
    finally:
        if observe:
            _metrics.drain_attached()
            _metrics.auto_attach(False)
    owned = frozenset(payload["owned"])
    shard_adopt(net.medium, owned)
    # worker kernel: same dispatch loops + ghost seq-key machinery (the
    # class swap and its log survive checkpoint capture/restore)
    net.sim.__class__ = _WorkerSim
    net.sim._init_shard_log()
    # targets come from the pre-filter t=0 adjacency
    neighbor_sets = {nid: set(hearers)
                     for nid, hearers in net.medium.neighbor_sets.items()}
    state = _ShardState(net.sim, payload["index"], owned,
                        payload["owner_of"], neighbor_sets,
                        payload["delta"])
    net.medium.tx_commit_hook = state.on_commit
    flows = _WorkerFlows(net, recipe, owned)
    roots = {"state": state, "net": net, "flows": flows,
             "injector": injector}
    return net.sim, roots


def _collect_worker(sim, roots) -> Dict[str, Any]:
    state: _ShardState = roots["state"]
    net = roots["net"]
    owner_of = state.owner_of
    index = state.index
    trace: List[Dict[str, Any]] = []
    bus = sim.trace_bus
    if bus is not None:
        # keep exactly the events this shard owns (node -1 — global
        # events like link flaps, replica-identical — go to shard 0)
        trace = [ev.as_dict() for ev in bus.events
                 if owner_of.get(ev.node, 0) == index]
    snapshot = sim.metrics.snapshot() if sim.metrics is not None else None
    return {
        "index": index,
        "trace": trace,
        "metrics": snapshot,
        "flows": roots["flows"].collect(),
        "events": sim.events_processed,
        "wall_s": state.wall,
        "now": sim.now,
        "frames_delivered": net.medium.frames_delivered,
        "frames_collided": net.medium.frames_collided,
        "frames_lost": net.medium.frames_lost,
    }


def _worker_main(conn, payload: Dict[str, Any]) -> None:
    """Worker process entry: build (or restore) a replica, serve windows."""
    try:
        if payload["mode"] == "fresh":
            sim, roots = _build_worker(payload)
        else:
            sim, roots = Checkpoint.from_bytes(payload["blob"]).restore()
        state: _ShardState = roots["state"]
        net = roots["net"]
        flows: _WorkerFlows = roots["flows"]
        medium = net.medium
        conn.send(("ready", sim.peek_time()))
        while True:
            msg = conn.recv()
            cmd = msg[0]
            if cmd == "advance" or cmd == "instant":
                _, t, ghosts = msg
                # Ghost seq keys come from the *previous* window's log
                # (the frames committed there), so schedule before
                # begin_seqlog resets it for the window about to run.
                for commit, air_start, sender_id, frame, air_time in ghosts:
                    sim.schedule_ghost(air_start, commit,
                                       medium.ghost_begin,
                                       sender_id, frame, air_time)
                sim.begin_seqlog()
                t0 = time.perf_counter()
                if cmd == "advance":
                    sim.run_exclusive(t)
                else:
                    sim.run(until=t)
                state.wall += time.perf_counter() - t0
                commits = state.pending
                state.pending = []
                conn.send(("window", commits, sim.peek_time(),
                           _cross_in_flight(medium, state)))
            elif cmd == "meter":
                flows.start_metering()
                conn.send(("ok",))
            elif cmd == "checkpoint":
                blob = Checkpoint.capture(sim, roots).to_bytes()
                conn.send(("ckpt", blob,
                           _cross_in_flight(medium, state)))
            elif cmd == "collect":
                conn.send(("result", _collect_worker(sim, roots)))
            elif cmd == "close":
                conn.send(("ok",))
                return
            else:  # pragma: no cover - protocol guard
                raise ShardError(f"unknown command {cmd!r}")
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:  # pragma: no cover - pipe already gone
            pass


# ----------------------------------------------------------------------
# coordinator
# ----------------------------------------------------------------------
class ShardedSimulator:
    """Drives N shard workers through lock-stepped conservative windows.

    Presents the phase surface the workload engine needs —
    ``run(until)``, ``start_metering()``, ``finalize(duration)`` — so
    :func:`run_sharded` can mirror ``FlowSet.measure`` exactly.

    With ``heal=True`` (the default) the coordinator survives worker
    death: a worker that exits or stops answering within
    ``worker_timeout`` seconds is killed, respawned from its heal base
    (the build payload, or the checkpoint refreshed every
    ``heal_every`` barriers), and fast-forwarded by replaying the
    coordinator's command journal — every window command plus the
    ghost frames it delivered.  Workers are deterministic replicas, so
    the respawned worker rejoins the next lock-step window in a state
    byte-identical to the one lost, and the merged results are
    identical to an unkilled run (pinned by the process-chaos tests).
    Each recovery is recorded in :attr:`respawns`.  ``barrier_hook``
    is called as ``hook(self, window_index, barrier_time)`` before
    every window — the process-chaos injection point.
    """

    def __init__(self, recipe: ShardRecipe, shards: int = 1,
                 _restore: Optional[Dict[str, Any]] = None,
                 heal: bool = True,
                 heal_every: Optional[int] = None,
                 worker_timeout: Optional[float] = None,
                 barrier_hook=None):
        recipe.validate()
        self.recipe = recipe
        self.shards = shards
        self.delta = recipe.lookahead()
        self.now = 0.0
        self.metering = False
        #: (barrier_time, cross-shard frames in flight) per barrier
        self.barrier_log: List[Tuple[float, int]] = []
        self.last_checkpoint: Optional[bytes] = None
        self.last_checkpoint_cross: Optional[int] = None
        #: undelivered cross-shard commits:
        #: (commit time, air_start, sender, frame, air_time, targets)
        self._ghost_out: List[Tuple[float, float, int, object, float,
                                    Tuple[int, ...]]] = []
        #: self-healing: respawn a dead/hung worker from its last heal
        #: base (initial payload, or a checkpoint refreshed every
        #: ``heal_every`` barriers) and replay the command journal —
        #: workers are deterministic, so the replayed replica is
        #: byte-identical to the lost one
        self._heal = heal
        self._heal_every = heal_every
        self._worker_timeout = worker_timeout or _WORKER_TIMEOUT
        #: called as hook(self, window_index, t) at the top of every
        #: lock-stepped window — the process-chaos injection point
        self.barrier_hook = barrier_hook
        #: completed barriers (the chaos schedules' window index)
        self.windows = 0
        #: command journal since the last heal base: ("window", cmd, t,
        #: per_shard_ghosts) and ("meter",) entries in execution order
        self._journal: List[Tuple] = []
        #: one dict per respawn: shard, reason, windows_replayed, wall_s
        self.respawns: List[Dict[str, Any]] = []
        if _restore is None:
            positions = recipe_positions(recipe)
            comm_range = recipe.builder_kwargs.get("comm_range", 10.0)
            self.plan = plan_shards(positions, comm_range, shards)
            self.owner_of = {nid: k for k, band in enumerate(self.plan)
                             for nid in band}
            payloads = [
                {"mode": "fresh", "recipe": recipe, "index": k,
                 "owned": tuple(band), "owner_of": self.owner_of,
                 "delta": self.delta}
                for k, band in enumerate(self.plan)
            ]
        else:
            self.plan = _restore["plan"]
            self.owner_of = _restore["owner_of"]
            self.now = _restore["now"]
            self.metering = _restore["metering"]
            self._ghost_out = list(_restore["ghosts"])
            payloads = [{"mode": "restore", "blob": blob}
                        for blob in _restore["workers"]]
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            ctx = multiprocessing.get_context("spawn")
        self._ctx = ctx
        #: respawn base: the payload each worker can be rebuilt from
        #: (the fresh/restore payload initially; a heal checkpoint later)
        self._base_payloads = list(payloads)
        self._conns = []
        self._procs = []
        try:
            for payload in payloads:
                parent, child = ctx.Pipe(duplex=True)
                proc = ctx.Process(target=_worker_main,
                                   args=(child, payload), daemon=True)
                proc.start()
                child.close()
                self._conns.append(parent)
                self._procs.append(proc)
            self._peeks: List[Optional[float]] = [
                self._recv(k, "ready")[1] for k in range(shards)
            ]
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------
    # protocol plumbing
    # ------------------------------------------------------------------
    def _recv(self, k: int, expect: str):
        conn = self._conns[k]
        try:
            if not conn.poll(self._worker_timeout):
                raise ShardWorkerDeath(
                    f"shard {k}: no reply within "
                    f"{self._worker_timeout:.0f}s (deadlock or death)")
            msg = conn.recv()
        except (EOFError, OSError):
            raise ShardWorkerDeath(
                f"shard {k}: worker died "
                f"(exitcode={self._procs[k].exitcode})")
        if msg[0] == "error":
            raise ShardError(f"shard {k} failed:\n{msg[1]}")
        if msg[0] != expect:
            raise ShardError(f"shard {k}: expected {expect!r}, "
                             f"got {msg[0]!r}")
        return msg

    def _send(self, k: int, msg: Tuple) -> bool:
        """Best-effort send; False if the pipe is already dead (the
        failure surfaces — and heals — at the matching receive)."""
        try:
            self._conns[k].send(msg)
            return True
        except (OSError, ValueError, BrokenPipeError):
            return False

    def _respawn(self, k: int, reason: str) -> None:
        """Replace a dead worker: rebuild from the heal base, replay
        the journal.  Workers are deterministic replicas, so the
        replayed worker reaches a byte-identical state; replies from
        replayed windows are discarded (their commits were already
        folded into ``_ghost_out`` at the original barriers)."""
        t0 = time.perf_counter()
        proc = self._procs[k]
        try:
            proc.kill()  # SIGKILL: also fells SIGSTOPped (hung) workers
        except (OSError, AttributeError):  # pragma: no cover
            pass
        proc.join(timeout=10)
        try:
            self._conns[k].close()
        except OSError:  # pragma: no cover
            pass
        parent, child = self._ctx.Pipe(duplex=True)
        newproc = self._ctx.Process(target=_worker_main,
                                    args=(child, self._base_payloads[k]),
                                    daemon=True)
        newproc.start()
        child.close()
        self._conns[k] = parent
        self._procs[k] = newproc
        self._recv(k, "ready")
        replayed = 0
        for entry in self._journal:
            if entry[0] == "meter":
                self._conns[k].send(("meter",))
                self._recv(k, "ok")
            else:
                _, cmd, t, per_shard = entry
                self._conns[k].send((cmd, t, per_shard[k]))
                self._recv(k, "window")
                replayed += 1
        self.respawns.append({
            "shard": k,
            "reason": reason,
            "windows_replayed": replayed,
            "wall_s": round(time.perf_counter() - t0, 3),
        })

    def _request(self, k: int, msg: Tuple, expect: str):
        """Send one command and await its reply, healing the worker
        (respawn + journal replay + one re-send) if it died."""
        try:
            self._send(k, msg)
            return self._recv(k, expect)
        except ShardWorkerDeath as exc:
            if not self._heal:
                raise
            self._respawn(k, reason=str(exc))
            self._conns[k].send(msg)
            return self._recv(k, expect)

    def _step(self, cmd: str, t: float) -> None:
        """One lock-stepped window: deliver ghosts, advance, gather."""
        if self.barrier_hook is not None:
            self.barrier_hook(self, self.windows, t)
        per_shard: List[List[Tuple[float, float, int, object, float]]] = [
            [] for _ in range(self.shards)
        ]
        # Commit order first: the worker's fractional ghost seq keys are
        # assigned in delivery order, so this *is* the oracle's tie
        # order for ghosts sharing a dispatch instant.
        for commit, air_start, sender_id, frame, air_time, targets in sorted(
                self._ghost_out, key=lambda g: (g[0], g[1], g[2])):
            for k in targets:
                per_shard[k].append(
                    (commit, air_start, sender_id, frame, air_time))
        self._ghost_out = []
        for k in range(self.shards):
            self._send(k, (cmd, t, per_shard[k]))
        cross_total = 0
        for k in range(self.shards):
            try:
                msg = self._recv(k, "window")
            except ShardWorkerDeath as exc:
                if not self._heal:
                    raise
                self._respawn(k, reason=str(exc))
                self._conns[k].send((cmd, t, per_shard[k]))
                msg = self._recv(k, "window")
            _, commits, peek, n_cross = msg
            self._ghost_out.extend(commits)
            self._peeks[k] = peek
            cross_total += n_cross
        self.now = t
        self.windows += 1
        self.barrier_log.append((t, cross_total))
        self._journal.append(("window", cmd, t, per_shard))
        if (self._heal and self._heal_every is not None
                and len(self._journal) >= self._heal_every):
            self._refresh_heal_base()

    def _refresh_heal_base(self) -> None:
        """Re-base self-healing on fresh worker checkpoints.

        Bounds replay cost after a crash to ``heal_every`` windows; the
        journal restarts empty against the new base."""
        blobs = [self._request(k, ("checkpoint",), "ckpt")[1]
                 for k in range(self.shards)]
        self._base_payloads = [{"mode": "restore", "blob": blob}
                               for blob in blobs]
        self._journal = []

    # ------------------------------------------------------------------
    # phase surface
    # ------------------------------------------------------------------
    def run(self, until: float,
            checkpoint_at: Optional[float] = None) -> None:
        """Advance all shards to exactly ``until`` (inclusive).

        Dispatches the same events the oracle's ``run(until=until)``
        would.  With ``checkpoint_at``, a checkpoint is captured at the
        first barrier at or after that time (barrier times are a pure
        function of recipe + shard count, so a re-run checkpoints at
        the identical instant).

        A single shard owns every node, so no frame ever crosses a
        boundary and the lock-stepped windows are pure overhead: the
        phase collapses to one exclusive window (same event order —
        there are no ghosts to inject at intermediate barriers).
        """
        if self.shards == 1:
            self._step("advance", until)
            self._step("instant", until)
            if (checkpoint_at is not None and self.last_checkpoint is None
                    and checkpoint_at <= until):
                self._capture_checkpoint()
            return
        while True:
            candidates = [p for p in self._peeks if p is not None]
            candidates.extend(g[1] for g in self._ghost_out)
            if not candidates:
                break
            t_next = min(candidates) + self.delta
            if t_next >= until:
                break
            self._step("advance", t_next)
            if (checkpoint_at is not None and self.last_checkpoint is None
                    and self.now >= checkpoint_at):
                self._capture_checkpoint()
        # All remaining pre-``until`` events are within one lookahead of
        # ``until``, so their commits air at >= until: safe to finish
        # the phase in one exclusive window plus the inclusive step.
        self._step("advance", until)
        self._step("instant", until)
        if (checkpoint_at is not None and self.last_checkpoint is None
                and checkpoint_at <= until):
            self._capture_checkpoint()

    def start_metering(self) -> None:
        """Open the measurement window in every shard (one barrier)."""
        for k in range(self.shards):
            self._request(k, ("meter",), "ok")
        self._journal.append(("meter",))
        self.metering = True

    def _capture_checkpoint(self) -> None:
        blobs: List[bytes] = []
        cross_total = 0
        for k in range(self.shards):
            _, blob, n_cross = self._request(k, ("checkpoint",), "ckpt")
            blobs.append(blob)
            cross_total += n_cross
        payload = {
            "magic": MAGIC,
            "recipe": self.recipe,
            "shards": self.shards,
            "plan": self.plan,
            "owner_of": self.owner_of,
            "now": self.now,
            "metering": self.metering,
            "ghosts": list(self._ghost_out),
            "workers": blobs,
        }
        self.last_checkpoint = pickle.dumps(
            payload, pickle.HIGHEST_PROTOCOL)
        self.last_checkpoint_cross = cross_total

    @classmethod
    def resume(cls, blob: bytes) -> "ShardedSimulator":
        """Rebuild a coordinator (and its workers) from a checkpoint."""
        payload = pickle.loads(blob)
        if not (isinstance(payload, dict) and payload.get("magic") == MAGIC):
            raise ShardError("not a sharded-run checkpoint (bad magic)")
        return cls(payload["recipe"], payload["shards"], _restore=payload)

    def finalize(self, duration: float) -> Dict[str, Any]:
        """Collect every shard's partials and merge (workers stay up)."""
        results = [self._request(k, ("collect",), "result")[1]
                   for k in range(self.shards)]
        return merge_results(self.recipe, results, self.owner_of, duration)

    def close(self) -> None:
        """Shut the workers down (idempotent)."""
        for k, conn in enumerate(self._conns):
            try:
                conn.send(("close",))
            except (OSError, ValueError):
                pass
        for proc in self._procs:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
                proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - SIGSTOPped worker
                proc.kill()
                proc.join(timeout=5)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass


# ----------------------------------------------------------------------
# merging
# ----------------------------------------------------------------------
def canonical_trace(events: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Sort events by ``(t, node, per-node occurrence)``.

    Each node's events must appear in their emission order in
    ``events`` (true for one bus, and for concatenated owner-filtered
    shard streams — every node's events come from exactly one shard).
    The result is the canonical order both the oracle and any shard
    count produce.
    """
    occurrence: Dict[int, int] = {}
    keyed = []
    for ev in events:
        node = ev["node"]
        i = occurrence.get(node, 0)
        occurrence[node] = i + 1
        keyed.append(((ev["t"], node, i), ev))
    keyed.sort(key=lambda pair: pair[0])
    return [ev for _, ev in keyed]


def _key_node(key: str) -> Optional[int]:
    """The ``node`` label of a rendered metric key, or None."""
    brace = key.find("{")
    if brace < 0:
        return None
    for item in key[brace + 1:-1].split(","):
        if item.startswith("node="):
            try:
                return int(item[5:])
            except ValueError:
                return None
    return None


def merge_metrics(
    snapshots: Sequence[Dict[str, Any]],
    owner_of: Dict[int, int],
) -> Dict[str, Any]:
    """Compose one oracle-shaped snapshot from per-shard snapshots.

    Every activity instrument carries ``node=<id>`` and is authoritative
    only in that node's owner shard (muted replicas hold stale copies).
    Unlabelled instruments (fault injections) are replica-identical, so
    shard 0's copy stands for all.
    """
    merged: Dict[str, Any] = {}
    for section in ("counters", "gauges", "histograms"):
        out: Dict[str, Any] = {}
        for index, snap in enumerate(snapshots):
            for key, value in snap.get(section, {}).items():
                node = _key_node(key)
                if node is None:
                    if index == 0:
                        out[key] = value
                elif owner_of.get(node, 0) == index:
                    out[key] = value
        merged[section] = dict(sorted(out.items()))
    return merged


def _flow_dicts_from_result(result) -> List[Dict[str, Any]]:
    """Oracle FlowSetResult -> the comparable per-flow dict shape."""
    return [
        {"index": f.index, "src": f.src, "dst": f.dst, "port": f.port,
         "kind": f.kind, "bytes": f.bytes_delivered,
         "goodput_bps": f.goodput_bps, "connected": f.connected,
         "errors": list(f.errors)}
        for f in result.flows
    ]


def merge_results(
    recipe: ShardRecipe,
    results: Sequence[Dict[str, Any]],
    owner_of: Dict[int, int],
    duration: float,
) -> Dict[str, Any]:
    """Merge per-shard collect() payloads into one oracle-shaped result."""
    by_index = {r["index"]: r for r in results}
    ordered = [by_index[k] for k in range(len(results))]
    trace: List[Dict[str, Any]] = []
    if recipe.capture_trace:
        for r in ordered:
            trace.extend(r["trace"])
        trace = canonical_trace(trace)
    metrics = None
    if recipe.capture_metrics and ordered[0]["metrics"] is not None:
        metrics = merge_metrics([r["metrics"] for r in ordered], owner_of)
    flows: List[Dict[str, Any]] = []
    for index, spec in enumerate(recipe.flows):
        port = (spec.port if spec.port is not None
                else recipe.base_port + index)
        src_part = ordered[owner_of[spec.src]]["flows"][index]
        dst_part = ordered[owner_of[spec.dst]]["flows"][index]
        nbytes = dst_part.get("bytes", 0)
        flows.append({
            "index": index, "src": spec.src, "dst": spec.dst,
            "port": port, "kind": spec.kind, "bytes": nbytes,
            "goodput_bps": (nbytes * 8.0 / duration
                            if duration > 0 else 0.0),
            "connected": src_part.get("connected", False),
            "errors": src_part.get("errors", []),
        })
    goodputs = [f["goodput_bps"] for f in flows]
    return {
        "trace": trace,
        "metrics": metrics,
        "flows": flows,
        "aggregate": {
            "goodput_bps": sum(goodputs),
            "fairness": jain_fairness(goodputs),
            "flows_connected": sum(1 for f in flows if f["connected"]),
            "bytes_delivered": sum(f["bytes"] for f in flows),
        },
        "per_shard": [
            {"index": r["index"], "events": r["events"],
             "wall_s": r["wall_s"], "now": r["now"],
             "frames_delivered": r["frames_delivered"],
             "frames_collided": r["frames_collided"],
             "frames_lost": r["frames_lost"]}
            for r in ordered
        ],
        "events": sum(r["events"] for r in ordered),
    }


# ----------------------------------------------------------------------
# whole-run drivers (oracle and sharded) — the equivalence surface
# ----------------------------------------------------------------------
def run_oracle(recipe: ShardRecipe, warmup: float,
               duration: float) -> Dict[str, Any]:
    """The recipe on the single-process kernel — the ground truth."""
    observe = recipe.capture_trace or recipe.capture_metrics
    if observe:
        _metrics.auto_attach(True, capture_trace=recipe.capture_trace,
                             trace_capacity=None)
    try:
        net, injector = build_network(recipe)
    finally:
        attached = _metrics.drain_attached() if observe else []
        if observe:
            _metrics.auto_attach(False)
    flows = FlowSet(net, recipe.flows, base_port=recipe.base_port,
                    params=recipe.params,
                    receiver_params=recipe.receiver_params)
    t0 = time.perf_counter()
    result = flows.measure(warmup, duration)
    wall = time.perf_counter() - t0
    trace: List[Dict[str, Any]] = []
    metrics = None
    if attached:
        registry, bus = attached[0]
        if recipe.capture_trace and bus is not None:
            trace = canonical_trace([ev.as_dict() for ev in bus.events])
        if recipe.capture_metrics:
            metrics = registry.snapshot()
    flow_dicts = _flow_dicts_from_result(result)
    goodputs = [f["goodput_bps"] for f in flow_dicts]
    return {
        "trace": trace,
        "metrics": metrics,
        "flows": flow_dicts,
        "aggregate": {
            "goodput_bps": sum(goodputs),
            "fairness": jain_fairness(goodputs),
            "flows_connected": result.flows_connected,
            "bytes_delivered": result.bytes_delivered,
        },
        "events": net.sim.events_processed,
        "wall_s": wall,
        "now": net.sim.now,
    }


def run_sharded(
    recipe: ShardRecipe,
    shards: int,
    warmup: float,
    duration: float,
    checkpoint_at: Optional[float] = None,
    heal: bool = True,
    heal_every: Optional[int] = None,
    worker_timeout: Optional[float] = None,
    barrier_hook=None,
) -> Dict[str, Any]:
    """The recipe across ``shards`` workers, ``FlowSet.measure``-shaped.

    ``heal``/``heal_every``/``worker_timeout`` configure worker
    self-healing and ``barrier_hook`` is the per-window chaos hook —
    all forwarded to :class:`ShardedSimulator`.  The merged result
    carries the ``respawns`` log (empty when nothing died).
    """
    sharded = ShardedSimulator(recipe, shards, heal=heal,
                               heal_every=heal_every,
                               worker_timeout=worker_timeout,
                               barrier_hook=barrier_hook)
    try:
        t0 = time.perf_counter()
        sharded.run(warmup, checkpoint_at=checkpoint_at)
        sharded.start_metering()
        sharded.run(warmup + duration, checkpoint_at=checkpoint_at)
        wall = time.perf_counter() - t0
        merged = sharded.finalize(duration)
        merged["wall_s"] = wall
        merged["now"] = sharded.now
        merged["barriers"] = len(sharded.barrier_log)
        merged["barrier_log"] = list(sharded.barrier_log)
        merged["checkpoint"] = sharded.last_checkpoint
        merged["checkpoint_cross"] = sharded.last_checkpoint_cross
        merged["respawns"] = list(sharded.respawns)
        return merged
    finally:
        sharded.close()


def resume_sharded(blob: bytes, until: float,
                   duration: float) -> Dict[str, Any]:
    """Resume a checkpointed sharded run, advance to ``until``, merge."""
    sharded = ShardedSimulator.resume(blob)
    try:
        sharded.run(until)
        merged = sharded.finalize(duration)
        merged["now"] = sharded.now
        return merged
    finally:
        sharded.close()


# ----------------------------------------------------------------------
# equivalence gate
# ----------------------------------------------------------------------
def equivalence_report(
    recipe: ShardRecipe,
    warmup: float,
    duration: float,
    shard_counts: Sequence[int],
    diff_out: Optional[str] = None,
) -> Dict[str, Any]:
    """Oracle vs every shard count; identical = gate passes.

    Compares the canonical event trace, the merged metrics snapshot and
    the per-flow outcomes byte-for-byte (via sorted JSON).  On failure,
    writes the oracle and diverging traces (JSONL) plus a summary into
    ``diff_out`` for artifact upload.
    """
    oracle = run_oracle(recipe, warmup, duration)
    oracle_trace = json.dumps(oracle["trace"], sort_keys=True)
    oracle_flows = json.dumps(oracle["flows"], sort_keys=True)
    report: Dict[str, Any] = {
        "warmup": warmup, "duration": duration,
        "oracle": {"events": oracle["events"],
                   "wall_s": round(oracle["wall_s"], 3),
                   "trace_events": len(oracle["trace"])},
        "runs": [], "ok": True,
    }
    failures: List[str] = []
    for shards in shard_counts:
        run = run_sharded(recipe, shards, warmup, duration)
        mismatches: List[str] = []
        if json.dumps(run["trace"], sort_keys=True) != oracle_trace:
            mismatches.append("trace")
        metric_diffs: List[str] = []
        if recipe.capture_metrics:
            metric_diffs = diff_snapshots(oracle["metrics"],
                                          run["metrics"])
            if metric_diffs:
                mismatches.append("metrics")
        if json.dumps(run["flows"], sort_keys=True) != oracle_flows:
            mismatches.append("flows")
        entry = {
            "shards": shards,
            "events": run["events"],
            "barriers": run["barriers"],
            "wall_s": round(run["wall_s"], 3),
            "trace_events": len(run["trace"]),
            "identical": not mismatches,
            "mismatches": mismatches,
        }
        report["runs"].append(entry)
        if mismatches:
            report["ok"] = False
            failures.append(f"shards={shards}: {', '.join(mismatches)}")
            if diff_out is not None:
                os.makedirs(diff_out, exist_ok=True)
                _write_jsonl(os.path.join(diff_out, "oracle.jsonl"),
                             oracle["trace"])
                _write_jsonl(
                    os.path.join(diff_out, f"sharded_{shards}.jsonl"),
                    run["trace"])
                with open(os.path.join(diff_out,
                                       f"diff_{shards}.txt"), "w") as fh:
                    fh.write("\n".join(
                        [f"divergent sections: {mismatches}"]
                        + metric_diffs[:200]) + "\n")
    report["failures"] = failures
    return report


def _write_jsonl(path: str, events: Sequence[Dict[str, Any]]) -> None:
    with open(path, "w") as fh:
        for ev in events:
            fh.write(json.dumps(ev, sort_keys=True) + "\n")


def default_gate_recipe(chaos: bool = False) -> ShardRecipe:
    """The CI gate's small grid mesh: 4x5 nodes, four staggered flows.

    The grid spans four spatial-index columns, so the planner can cut
    it into up to 4 shards; flows cross the cuts in both directions.
    The chaos variant flaps a boundary link, reboots a relay and drifts
    a clock — all replica-deterministic kinds.
    """
    chaos_spec = None
    if chaos:
        chaos_spec = {
            "name": "shard-gate-chaos",
            "faults": [
                {"kind": "link_flap", "a": 2, "b": 3, "at": 1.2,
                 "down_for": 0.4},
                {"kind": "node_reboot", "node": 7, "at": 1.6,
                 "outage": 0.5},
                {"kind": "clock_drift", "node": 4, "skew": 1.0003},
            ],
        }
    return ShardRecipe(
        builder="grid",
        builder_kwargs={"rows": 4, "cols": 5, "seed": 3},
        flows=[
            FlowSpec(src=4, dst=0),
            FlowSpec(src=9, dst=5, start=0.25),
            FlowSpec(src=14, dst=10, start=0.5),
            FlowSpec(src=15, dst=19, start=0.75, kind="sensor",
                     report_bytes=82, interval=0.5),
        ],
        chaos=chaos_spec,
        capture_trace=True,
        capture_metrics=True,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI for the shard-equivalence CI job (``python -m repro.sim.shard``)."""
    parser = argparse.ArgumentParser(
        description="Gate sharded simulation against the single-process "
                    "oracle: byte-identical traces, metrics and flows.")
    parser.add_argument("--shards", type=int, nargs="+", default=[1, 2, 4],
                        help="shard counts to verify (default: 1 2 4)")
    parser.add_argument("--warmup", type=float, default=1.0)
    parser.add_argument("--duration", type=float, default=2.0)
    parser.add_argument("--chaos", action="store_true",
                        help="use the chaos-schedule gate variant")
    parser.add_argument("--diff-out", default=None, metavar="DIR",
                        help="write diverging traces here on failure")
    parser.add_argument("--json-out", default=None, metavar="FILE",
                        help="write the JSON report here")
    args = parser.parse_args(argv)
    recipe = default_gate_recipe(chaos=args.chaos)
    report = equivalence_report(recipe, args.warmup, args.duration,
                                args.shards, diff_out=args.diff_out)
    if args.json_out:
        with open(args.json_out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
    print(json.dumps({k: v for k, v in report.items() if k != "runs"},
                     sort_keys=True))
    for run in report["runs"]:
        status = "identical" if run["identical"] else "DIVERGED"
        print(f"  shards={run['shards']}: {status} "
              f"({run['events']} events, {run['barriers']} barriers, "
              f"{run['wall_s']}s)")
    if not report["ok"]:
        print("shard-equivalence FAILED: " + "; ".join(report["failures"]),
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
