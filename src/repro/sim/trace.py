"""Counters, time-series recorders, and the structured event-trace bus.

The experiment harness extracts every number the paper reports (goodput,
segment-loss rate, RTT percentiles, duty cycles, cwnd traces, frame
counts) from these primitives rather than ad-hoc prints, so tests can
assert on them directly.

:class:`TraceBus` is the qualitative half of the observability layer
(its quantitative sibling is :class:`repro.sim.metrics.MetricsRegistry`):
typed event records stamped with simulated time, originating layer and
node, kept either in a bounded ring buffer or as a full capture, and
exportable to JSONL or CSV for offline analysis.  Layers emit behind
``is None`` guards, so a simulation without a bus pays nothing.
"""

from __future__ import annotations

import csv
import json
from collections import defaultdict, deque
from typing import Dict, Iterable, List, Optional, Tuple


class Counter:
    """A named bag of monotonically increasing integer counters."""

    def __init__(self) -> None:
        self._counts: Dict[str, int] = defaultdict(int)

    def incr(self, name: str, amount: int = 1) -> None:
        """Increase ``name`` by ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ValueError("counters are monotonic; use a gauge instead")
        self._counts[name] += amount

    def get(self, name: str) -> int:
        """Current value of ``name`` (0 if never incremented)."""
        return self._counts.get(name, 0)

    def as_dict(self) -> Dict[str, int]:
        """Snapshot of all counters."""
        return dict(self._counts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({dict(self._counts)!r})"


class SeriesRecorder:
    """Records (time, value) samples for one quantity (e.g. cwnd)."""

    def __init__(self, name: str = ""):
        self.name = name
        self.times: List[float] = []
        self.values: List[float] = []

    def record(self, time: float, value: float) -> None:
        """Append a sample; times must be non-decreasing."""
        if self.times and time < self.times[-1]:
            raise ValueError("samples must be recorded in time order")
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def window(self, t0: float, t1: float) -> List[Tuple[float, float]]:
        """Samples with t0 <= time <= t1."""
        return [
            (t, v) for t, v in zip(self.times, self.values) if t0 <= t <= t1
        ]

    def last(self) -> Optional[float]:
        """Most recent value, or None if empty."""
        return self.values[-1] if self.values else None

    def mean(self) -> float:
        """Unweighted mean of sample values (0.0 if empty)."""
        if not self.values:
            return 0.0
        return sum(self.values) / len(self.values)

    def time_weighted_mean(self, until: float) -> float:
        """Mean of the step function defined by the samples up to ``until``."""
        if not self.times:
            return 0.0
        total = 0.0
        for i, (t, v) in enumerate(zip(self.times, self.values)):
            t_next = self.times[i + 1] if i + 1 < len(self.times) else until
            t_next = min(t_next, until)
            if t_next > t:
                total += v * (t_next - t)
        span = until - self.times[0]
        return total / span if span > 0 else (self.values[-1] if self.values else 0.0)


class TraceRecorder:
    """A container for named counters and series used by one simulation."""

    def __init__(self) -> None:
        self.counters = Counter()
        self._series: Dict[str, SeriesRecorder] = {}

    def series(self, name: str) -> SeriesRecorder:
        """Return (creating on first use) the named series."""
        s = self._series.get(name)
        if s is None:
            s = SeriesRecorder(name)
            self._series[name] = s
        return s

    def has_series(self, name: str) -> bool:
        """True if the named series has been created."""
        return name in self._series


class TraceEvent:
    """One structured trace record.

    ``fields`` carries event-specific details (sequence numbers, retry
    counts, window sizes) as a plain dict of JSON-serialisable values.
    """

    __slots__ = ("time", "layer", "node", "kind", "fields")

    def __init__(self, time: float, layer: str, node: int, kind: str,
                 fields: Optional[Dict[str, object]] = None):
        self.time = time
        self.layer = layer
        self.node = node
        self.kind = kind
        self.fields = fields or {}

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready form (the JSONL line format)."""
        return {
            "t": self.time,
            "layer": self.layer,
            "node": self.node,
            "kind": self.kind,
            "fields": self.fields,
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceEvent):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<TraceEvent t={self.time:.6f} {self.layer}/{self.kind} "
                f"node={self.node} {self.fields!r}>")


class TraceBus:
    """Typed event-trace capture for one simulation.

    ``capacity=None`` keeps every event (full capture, for short
    debugging runs); an integer keeps only the most recent ``capacity``
    events (ring buffer — bounded memory for day-long simulations).
    ``emit`` stamps events with the owning simulator's current time.
    """

    def __init__(self, sim, capacity: Optional[int] = None):
        self.sim = sim
        self.capacity = capacity
        self._events: deque = deque(maxlen=capacity)
        self.emitted = 0  # total ever emitted (ring may have dropped some)
        #: live subscribers called with each TraceEvent as it is emitted
        #: (the invariant engine's on-event evaluation hook); kept empty
        #: unless someone subscribes, so plain captures pay one truthy
        #: check per emit.
        self._subscribers: List = []

    def emit(self, layer: str, node: int, kind: str, /, **fields) -> None:
        """Record one event at the current simulated time.

        The first three parameters are positional-only so ``fields``
        may itself contain keys named ``layer``, ``node`` or ``kind``
        (e.g. a retransmit event's ``kind=rto|fast|sack`` detail).
        """
        self.emitted += 1
        event = TraceEvent(self.sim.now, layer, node, kind, fields)
        self._events.append(event)
        if self._subscribers:
            for fn in self._subscribers:
                fn(event)

    def subscribe(self, fn) -> None:
        """Call ``fn(event)`` on every subsequent emit (live consumers).

        Subscribers must not emit onto the same bus from inside the
        callback (no re-entrancy guard — keep them read-only).
        """
        if fn not in self._subscribers:
            self._subscribers.append(fn)

    def unsubscribe(self, fn) -> None:
        """Remove a subscriber added with :meth:`subscribe` (idempotent)."""
        if fn in self._subscribers:
            self._subscribers.remove(fn)

    def __len__(self) -> int:
        return len(self._events)

    @property
    def events(self) -> List[TraceEvent]:
        """The retained events, oldest first."""
        return list(self._events)

    def select(
        self,
        layer: Optional[str] = None,
        node: Optional[int] = None,
        kind: Optional[str] = None,
    ) -> List[TraceEvent]:
        """Retained events matching every given criterion."""
        return [
            ev for ev in self._events
            if (layer is None or ev.layer == layer)
            and (node is None or ev.node == node)
            and (kind is None or ev.kind == kind)
        ]

    def clear(self) -> None:
        """Drop all retained events (``emitted`` keeps counting)."""
        self._events.clear()

    # ------------------------------------------------------------------
    # export / import
    # ------------------------------------------------------------------
    def stream_jsonl(self, path):
        """Stream every *subsequent* event to ``path`` as JSON Lines.

        Unlike :meth:`to_jsonl` (a post-hoc dump of the retained ring),
        this subscribes a live writer, so long gateway runs can tail
        the file while the simulation is serving.  Lines are flushed
        per event.  Returns a zero-argument ``close()`` callable that
        unsubscribes and closes the file.
        """
        fh = open(path, "w")

        def _write(ev: TraceEvent) -> None:
            fh.write(json.dumps(ev.as_dict(), sort_keys=True) + "\n")
            fh.flush()

        self.subscribe(_write)

        def close() -> None:
            self.unsubscribe(_write)
            fh.close()

        return close

    def to_jsonl(self, path) -> int:
        """Write retained events as JSON Lines; returns the line count."""
        with open(path, "w") as fh:
            for ev in self._events:
                fh.write(json.dumps(ev.as_dict(), sort_keys=True) + "\n")
        return len(self._events)

    def to_csv(self, path) -> int:
        """Write retained events as CSV (fields JSON-encoded in one
        column, so arbitrary event shapes fit a fixed header)."""
        with open(path, "w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(["t", "layer", "node", "kind", "fields"])
            for ev in self._events:
                writer.writerow([
                    repr(ev.time), ev.layer, ev.node, ev.kind,
                    json.dumps(ev.fields, sort_keys=True),
                ])
        return len(self._events)


def write_jsonl(events, path) -> int:
    """Write an iterable of :class:`TraceEvent` as JSON Lines.

    Module-level counterpart of :meth:`TraceBus.to_jsonl` for code that
    keeps its own event list (e.g. the fault injector's log, which must
    exist even when no bus is attached); returns the line count.
    """
    count = 0
    with open(path, "w") as fh:
        for ev in events:
            fh.write(json.dumps(ev.as_dict(), sort_keys=True) + "\n")
            count += 1
    return count


def read_jsonl(path) -> List[TraceEvent]:
    """Load a JSONL trace export back into TraceEvent objects."""
    events: List[TraceEvent] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            events.append(TraceEvent(
                rec["t"], rec["layer"], rec["node"], rec["kind"],
                rec.get("fields") or {},
            ))
    return events


def percentile(values: Iterable[float], q: float) -> float:
    """Linear-interpolation percentile (q in [0, 100]) of ``values``."""
    data = sorted(values)
    if not data:
        raise ValueError("percentile of empty sequence")
    if not 0 <= q <= 100:
        raise ValueError("q must be within [0, 100]")
    if len(data) == 1:
        return data[0]
    pos = (len(data) - 1) * q / 100.0
    lo = int(pos)
    hi = min(lo + 1, len(data) - 1)
    frac = pos - lo
    return data[lo] * (1 - frac) + data[hi] * frac
