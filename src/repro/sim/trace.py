"""Counters and time-series recorders for experiment metrics.

The experiment harness extracts every number the paper reports (goodput,
segment-loss rate, RTT percentiles, duty cycles, cwnd traces, frame
counts) from these primitives rather than ad-hoc prints, so tests can
assert on them directly.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Tuple


class Counter:
    """A named bag of monotonically increasing integer counters."""

    def __init__(self) -> None:
        self._counts: Dict[str, int] = defaultdict(int)

    def incr(self, name: str, amount: int = 1) -> None:
        """Increase ``name`` by ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ValueError("counters are monotonic; use a gauge instead")
        self._counts[name] += amount

    def get(self, name: str) -> int:
        """Current value of ``name`` (0 if never incremented)."""
        return self._counts.get(name, 0)

    def as_dict(self) -> Dict[str, int]:
        """Snapshot of all counters."""
        return dict(self._counts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({dict(self._counts)!r})"


class SeriesRecorder:
    """Records (time, value) samples for one quantity (e.g. cwnd)."""

    def __init__(self, name: str = ""):
        self.name = name
        self.times: List[float] = []
        self.values: List[float] = []

    def record(self, time: float, value: float) -> None:
        """Append a sample; times must be non-decreasing."""
        if self.times and time < self.times[-1]:
            raise ValueError("samples must be recorded in time order")
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def window(self, t0: float, t1: float) -> List[Tuple[float, float]]:
        """Samples with t0 <= time <= t1."""
        return [
            (t, v) for t, v in zip(self.times, self.values) if t0 <= t <= t1
        ]

    def last(self) -> Optional[float]:
        """Most recent value, or None if empty."""
        return self.values[-1] if self.values else None

    def mean(self) -> float:
        """Unweighted mean of sample values (0.0 if empty)."""
        if not self.values:
            return 0.0
        return sum(self.values) / len(self.values)

    def time_weighted_mean(self, until: float) -> float:
        """Mean of the step function defined by the samples up to ``until``."""
        if not self.times:
            return 0.0
        total = 0.0
        for i, (t, v) in enumerate(zip(self.times, self.values)):
            t_next = self.times[i + 1] if i + 1 < len(self.times) else until
            t_next = min(t_next, until)
            if t_next > t:
                total += v * (t_next - t)
        span = until - self.times[0]
        return total / span if span > 0 else (self.values[-1] if self.values else 0.0)


class TraceRecorder:
    """A container for named counters and series used by one simulation."""

    def __init__(self) -> None:
        self.counters = Counter()
        self._series: Dict[str, SeriesRecorder] = {}

    def series(self, name: str) -> SeriesRecorder:
        """Return (creating on first use) the named series."""
        s = self._series.get(name)
        if s is None:
            s = SeriesRecorder(name)
            self._series[name] = s
        return s

    def has_series(self, name: str) -> bool:
        """True if the named series has been created."""
        return name in self._series


def percentile(values: Iterable[float], q: float) -> float:
    """Linear-interpolation percentile (q in [0, 100]) of ``values``."""
    data = sorted(values)
    if not data:
        raise ValueError("percentile of empty sequence")
    if not 0 <= q <= 100:
        raise ValueError("q must be within [0, 100]")
    if len(data) == 1:
        return data[0]
    pos = (len(data) - 1) * q / 100.0
    lo = int(pos)
    hi = min(lo + 1, len(data) - 1)
    frac = pos - lo
    return data[lo] * (1 - frac) + data[hi] * frac
