"""Deterministic random-number streams.

Each subsystem that needs randomness (CSMA backoff, link-retry jitter,
loss injection, workload jitter) draws from its own named stream so that
changing one subsystem's consumption pattern does not perturb the
others.  Streams are seeded from a single experiment seed, making every
experiment reproducible from ``(seed,)`` alone.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RngStreams:
    """A family of independent ``random.Random`` streams under one seed."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating on first use) the named stream."""
        rng = self._streams.get(name)
        if rng is None:
            # Derive a per-stream seed that is stable across runs and
            # processes (Python's hash() is salted per process, so it
            # must not be used here) and independent of creation order.
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            derived = int.from_bytes(digest[:8], "big")
            rng = random.Random(derived)
            self._streams[name] = rng
        return rng

    def uniform(self, name: str, a: float, b: float) -> float:
        """Draw uniform(a, b) from the named stream."""
        return self.stream(name).uniform(a, b)

    def random(self, name: str) -> float:
        """Draw uniform(0, 1) from the named stream."""
        return self.stream(name).random()

    def randint(self, name: str, a: int, b: int) -> int:
        """Draw an integer in [a, b] from the named stream."""
        return self.stream(name).randint(a, b)

    def choice(self, name: str, seq):
        """Pick one element of ``seq`` from the named stream."""
        return self.stream(name).choice(seq)

    def expovariate(self, name: str, lam: float) -> float:
        """Draw an exponential variate with rate ``lam`` (mean 1/lam)."""
        return self.stream(name).expovariate(lam)
