"""Simulator-scoped metrics: labelled counters, gauges and histograms.

This is the quantitative half of the observability layer (the
qualitative half — typed event records — lives in
:class:`repro.sim.trace.TraceBus`).  Design rules:

* **Simulator-scoped, never process-wide.**  A :class:`MetricsRegistry`
  belongs to one :class:`~repro.sim.engine.Simulator`; two simulations
  in one process (e.g. the parallel experiment runner) never share
  state.  The only module-level state is the opt-in *auto-attach* flag
  that tells freshly constructed simulators to carry a registry.
* **Pay for what you use.**  When no registry is attached, every layer
  caches ``None`` for its instruments at construction time and each
  would-be emission costs a single attribute load plus an ``is None``
  test.  When enabled, hot paths hold direct references to instrument
  objects, so an emission is one attribute increment — no name
  hashing, no dict lookup.
* **Deterministic snapshots.**  A snapshot is a pure function of
  simulated behaviour: keys are canonically ordered, values derive
  only from simulated time and counts, and no wall-clock quantity is
  ever recorded.  Two identical seeded runs therefore produce
  byte-identical JSON — the property ``tools/bench.py --metrics-gate``
  turns into a whole-stack behavioural regression gate.

Label conventions follow the paper's evaluation: every per-node
instrument carries ``node=<id>``, and multi-cause counters split by
``kind`` (e.g. ``tcp.retransmits{kind=rto|fast|sack}``).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Callable, Dict, List, Optional, Sequence, Tuple

#: default histogram bucket upper bounds (seconds) — tuned for the
#: latency scales of this simulator: sub-millisecond MAC turnarounds up
#: to multi-second RTO backoffs.
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

LabelItems = Tuple[Tuple[str, str], ...]


def _label_items(labels: Dict[str, object]) -> LabelItems:
    """Canonical (sorted, stringified) form of a label set."""
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def metric_key(name: str, labels: LabelItems) -> str:
    """Render ``name{k=v,...}`` with labels in canonical order."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class CounterMetric:
    """A monotonically increasing count for one (name, labels) pair."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class GaugeMetric:
    """A point-in-time value for one (name, labels) pair."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


class HistogramMetric:
    """Fixed-bucket histogram (cumulative-style export, like Prometheus).

    ``bounds`` are upper bucket edges; an implicit +Inf bucket catches
    the overflow.  ``observe`` is a bisect plus two adds, cheap enough
    for per-frame latencies.
    """

    __slots__ = ("bounds", "bucket_counts", "total", "count")

    def __init__(self, bounds: Sequence[float]):
        ordered = tuple(sorted(bounds))
        if not ordered:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds = ordered
        self.bucket_counts = [0] * (len(ordered) + 1)  # last = +Inf
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        # bisect_left makes upper edges inclusive (Prometheus `le`)
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1

    def export(self) -> Dict[str, object]:
        """JSON-ready form; bucket keys are the stringified bounds."""
        buckets = {str(b): c for b, c in zip(self.bounds, self.bucket_counts)}
        buckets["+inf"] = self.bucket_counts[-1]
        return {"buckets": buckets, "sum": self.total, "count": self.count}


class MetricsRegistry:
    """All instruments of one simulation.

    ``counter``/``gauge``/``histogram`` create on first use and return
    the same instrument object for the same (name, labels) pair, so
    layers resolve instruments once at construction and hot paths touch
    only the instrument itself.
    """

    def __init__(self) -> None:
        self._instruments: Dict[Tuple[str, LabelItems], object] = {}
        self._collectors: List[Callable[["MetricsRegistry"], None]] = []

    # ------------------------------------------------------------------
    # instrument accessors
    # ------------------------------------------------------------------
    def _get(self, name: str, labels: Dict[str, object], factory, kind):
        key = (name, _label_items(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = factory()
            self._instruments[key] = instrument
        elif not isinstance(instrument, kind):
            raise TypeError(
                f"{metric_key(*key)} already registered as "
                f"{type(instrument).__name__}, not {kind.__name__}"
            )
        return instrument

    def counter(self, name: str, **labels) -> CounterMetric:
        """The counter for ``name`` with this exact label set."""
        return self._get(name, labels, CounterMetric, CounterMetric)

    def gauge(self, name: str, **labels) -> GaugeMetric:
        """The gauge for ``name`` with this exact label set."""
        return self._get(name, labels, GaugeMetric, GaugeMetric)

    def histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        **labels,
    ) -> HistogramMetric:
        """The histogram for ``name`` with this exact label set.

        ``buckets`` applies on first creation only (subsequent calls
        return the existing instrument unchanged).
        """
        bounds = DEFAULT_TIME_BUCKETS if buckets is None else buckets
        return self._get(
            name, labels, lambda: HistogramMetric(bounds), HistogramMetric
        )

    def register_collector(self, fn: Callable[["MetricsRegistry"], None]) -> None:
        """Register a callback run at snapshot time.

        Collectors pull state that would be wasteful to push per event
        (energy ledgers, duty cycles, queue depths) into gauges.  They
        must derive values only from simulated state, never wall clock.
        """
        self._collectors.append(fn)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Deterministic, JSON-ready dump of every instrument."""
        for collector in self._collectors:
            collector(self)
        counters: Dict[str, int] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, object] = {}
        for (name, labels), instrument in sorted(self._instruments.items()):
            key = metric_key(name, labels)
            if isinstance(instrument, CounterMetric):
                counters[key] = instrument.value
            elif isinstance(instrument, GaugeMetric):
                gauges[key] = instrument.value
            else:
                histograms[key] = instrument.export()
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}

    def write_json(self, path, indent: int = 2) -> Dict[str, Dict[str, object]]:
        """Snapshot to a JSON file (live export for external consumers,
        e.g. the gateway's slack/latency dump); returns the snapshot."""
        import json

        snap = self.snapshot()
        with open(path, "w") as fh:
            json.dump(snap, fh, indent=indent, sort_keys=True)
            fh.write("\n")
        return snap


def diff_snapshots(golden: Dict, current: Dict) -> List[str]:
    """Human-readable differences between two snapshots (empty = equal).

    Used by the CI metrics gate: *any* difference means simulated
    behaviour drifted somewhere in the stack.
    """
    diffs: List[str] = []
    sections = sorted(set(golden) | set(current))
    for section in sections:
        g = golden.get(section, {})
        c = current.get(section, {})
        for key in sorted(set(g) | set(c)):
            if key not in g:
                diffs.append(f"{section}: {key} appeared "
                             f"(now {c[key]!r})")
            elif key not in c:
                diffs.append(f"{section}: {key} disappeared "
                             f"(was {g[key]!r})")
            elif g[key] != c[key]:
                diffs.append(f"{section}: {key} changed: "
                             f"{g[key]!r} -> {c[key]!r}")
    return diffs


# ----------------------------------------------------------------------
# auto-attach: opt-in observability for simulators built out of reach
# ----------------------------------------------------------------------
# Scenario and experiment builders construct their Simulator internally,
# so callers like ``tools/bench.py --metrics-gate`` cannot hand one a
# registry.  auto_attach() flips a flag that makes every subsequently
# constructed Simulator carry its *own* fresh registry (still
# simulator-scoped — nothing is shared), and drain_attached() hands the
# caller everything created since the last drain, in creation order.

_auto_enabled = False
_auto_capture_trace = False
_auto_trace_capacity: Optional[int] = None
_attached: List[Tuple[MetricsRegistry, object]] = []


def auto_attach(
    enable: bool = True,
    capture_trace: bool = False,
    trace_capacity: Optional[int] = 4096,
) -> None:
    """Toggle per-Simulator observability for code that builds its own sims.

    While enabled, each new Simulator gets a private MetricsRegistry
    (and, with ``capture_trace``, a TraceBus ring buffer of
    ``trace_capacity`` events; ``None`` means unbounded capture).
    """
    global _auto_enabled, _auto_capture_trace, _auto_trace_capacity
    _auto_enabled = enable
    _auto_capture_trace = capture_trace
    _auto_trace_capacity = trace_capacity
    if not enable:
        _attached.clear()


def attach(sim) -> Tuple[Optional[MetricsRegistry], Optional[object]]:
    """Called by Simulator.__init__; returns (metrics, trace_bus)."""
    if not _auto_enabled:
        return None, None
    from repro.sim.trace import TraceBus

    registry = MetricsRegistry()
    bus = TraceBus(sim, capacity=_auto_trace_capacity) if _auto_capture_trace else None
    _attached.append((registry, bus))
    return registry, bus


def drain_attached() -> List[Tuple[MetricsRegistry, object]]:
    """Registries (and buses) auto-attached since the last drain."""
    drained = list(_attached)
    _attached.clear()
    return drained
