"""Discrete-event simulation substrate.

Every other subsystem in this reproduction (radio, MAC, 6LoWPAN, IPv6,
TCP, CoAP) is driven by the scheduler in :mod:`repro.sim.engine`.  The
engine is deliberately small: a binary-heap event queue with cancellable
events, a simulated clock, and per-simulation deterministic random
number streams (:mod:`repro.sim.rng`).  :mod:`repro.sim.trace` provides
counters and time-series recorders used by the experiment harness to
extract goodput, duty cycles, and cwnd traces.
"""

from repro.sim.engine import Event, Simulator
from repro.sim.rng import RngStreams
from repro.sim.timers import Timer
from repro.sim.trace import Counter, SeriesRecorder, TraceRecorder

__all__ = [
    "Event",
    "Simulator",
    "RngStreams",
    "Timer",
    "Counter",
    "SeriesRecorder",
    "TraceRecorder",
]
