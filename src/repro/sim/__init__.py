"""Discrete-event simulation substrate.

Every other subsystem in this reproduction (radio, MAC, 6LoWPAN, IPv6,
TCP, CoAP) is driven by the scheduler in :mod:`repro.sim.engine`.  The
engine is deliberately small: a binary-heap event queue with cancellable
events, a simulated clock, and per-simulation deterministic random
number streams (:mod:`repro.sim.rng`).  :mod:`repro.sim.trace` provides
counters, time-series recorders, and the structured event-trace bus;
:mod:`repro.sim.metrics` provides the simulator-scoped metrics registry
(labelled counters/gauges/histograms with deterministic snapshots) that
``tools/bench.py --metrics-gate`` turns into a CI behavioural gate.
See ``docs/observability.md`` for how the pieces fit.
"""

from repro.sim.engine import Event, Simulator
from repro.sim.metrics import MetricsRegistry, diff_snapshots
from repro.sim.rng import RngStreams
from repro.sim.timers import Timer
from repro.sim.trace import (
    Counter,
    SeriesRecorder,
    TraceBus,
    TraceEvent,
    TraceRecorder,
)

__all__ = [
    "Event",
    "Simulator",
    "MetricsRegistry",
    "diff_snapshots",
    "RngStreams",
    "Timer",
    "Counter",
    "SeriesRecorder",
    "TraceBus",
    "TraceEvent",
    "TraceRecorder",
]
