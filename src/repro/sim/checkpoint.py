"""Deterministic snapshot/restore of a whole simulation.

A :class:`Checkpoint` captures the complete reachable state of a
:class:`~repro.sim.engine.Simulator` — event heap (including periodic
events and in-flight timers), :class:`~repro.sim.rng.RngStreams`
generators, per-node PHY/MAC/6LoWPAN/TCP state, fault injectors,
workload harnesses — as one consistent deep copy.  Restoring yields a
fully private simulation that, when run, produces an event trace
byte-identical to the uninterrupted original: the determinism contract
the kernel already guarantees across process runs, extended to apply
across a snapshot boundary.

How it works
------------
``capture`` deep-copies ``(sim, roots)`` in a single memo, so every
object the scheduler can reach — plus any harness objects the caller
names in ``roots`` — is cloned exactly once and identity relationships
are preserved.  This relies on a repo-wide convention: **callbacks
reachable from the scheduler are bound methods or
``functools.partial`` over bound methods, never closures or lambdas.**
``copy.deepcopy`` treats plain functions as atomic (shared), so a
closure would keep mutating the *original* object graph after a
restore; bound methods and partials clone with their ``__self__``.
The same convention makes the graph picklable, which is what
``to_bytes``/``save`` use for on-disk checkpoints.

Capturing from *inside* a running simulation (the
:class:`CheckpointManager` periodic auto-checkpoint) is safe because
``Simulator.run`` re-arms a periodic event before dispatching its
callback — the auto-checkpoint event is already back in the queue when
the snapshot is taken, so the restored run re-checkpoints on the same
cadence and the event sequence is unperturbed.

The ``on_event`` dispatch hook is deliberately excluded from the
snapshot (it is a harness-side observer, frequently a closure over a
trace list); a restored simulator comes back with ``on_event = None``
and the caller installs its own.
"""

from __future__ import annotations

import copy
import io
import pickle
from collections import deque
from typing import Any, Dict, List, Optional, Tuple


class CheckpointError(Exception):
    """Raised when a simulation graph cannot be snapshotted/serialised."""


class Checkpoint:
    """One consistent snapshot of a simulation (plus named roots).

    Create with :meth:`capture`; re-materialise (as many times as
    needed — each restore is independent) with :meth:`restore`.
    """

    #: format marker for on-disk checkpoints
    MAGIC = "repro-checkpoint-v1"

    def __init__(self, time: float, seq: int,
                 state: Tuple[Any, Dict[str, Any]]):
        #: simulated time at capture
        self.time = time
        #: scheduler sequence counter at capture (unique, monotonic)
        self.seq = seq
        #: trace boundary: the ``(time, seq)`` an ``on_event`` hook
        #: recorded for the dispatch that took this snapshot.  Set by
        #: :class:`CheckpointManager` — periodic events are re-armed
        #: (time/seq mutated in place) *before* dispatch, so the
        #: capture dispatch is traced under its *next* firing
        #: coordinates, and that is the split point for comparing a
        #: restored run's trace against the original.  ``None`` for
        #: checkpoints taken outside the run loop (there the caller
        #: already knows the trace length at capture).
        self.boundary: Optional[Tuple[float, int]] = None
        self._state = state

    # ------------------------------------------------------------------
    # creation
    # ------------------------------------------------------------------
    @classmethod
    def capture(cls, sim, roots: Optional[Dict[str, Any]] = None,
                ) -> "Checkpoint":
        """Snapshot ``sim`` and the named harness ``roots``.

        ``roots`` maps names to objects the caller wants back from
        :meth:`restore` (workload drivers, injectors, stacks …).  They
        are copied in the same memo as the simulator, so a root that
        references the sim (or vice versa) stays consistently shared in
        the clone.
        """
        hook = sim.on_event
        sim.on_event = None  # harness observer: never part of a snapshot
        try:
            state = copy.deepcopy((sim, dict(roots or {})))
        except TypeError as exc:
            raise CheckpointError(
                f"simulation graph is not checkpointable: {exc} "
                f"(scheduler-reachable callbacks must be bound methods "
                f"or functools.partial, not lambdas/closures)"
            ) from exc
        finally:
            sim.on_event = hook
        return cls(sim.now, sim._seq, state)

    # ------------------------------------------------------------------
    # restore
    # ------------------------------------------------------------------
    def restore(self) -> Tuple[Any, Dict[str, Any]]:
        """Return ``(sim, roots)`` — a fresh private copy of the snapshot.

        Each call re-copies the stored state, so one checkpoint supports
        repeated replays (the triage workflow) without cross-talk.  The
        returned simulator is stopped (``run`` may be called on it) and
        has no ``on_event`` hook.
        """
        sim, roots = copy.deepcopy(self._state)
        sim._running = False
        sim._stopped = False
        sim.on_event = None
        return sim, roots

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialise the checkpoint (header + pickled state graph)."""
        try:
            payload = pickle.dumps(self._state, pickle.HIGHEST_PROTOCOL)
        except (pickle.PicklingError, TypeError, AttributeError) as exc:
            raise CheckpointError(
                f"checkpoint is not serialisable: {exc} "
                f"(scheduler-reachable callbacks must be bound methods "
                f"or functools.partial, not lambdas/closures)"
            ) from exc
        header = (self.MAGIC, self.time, self.seq, self.boundary)
        return pickle.dumps(header, pickle.HIGHEST_PROTOCOL) + payload

    @classmethod
    def from_bytes(cls, data: bytes) -> "Checkpoint":
        """Inverse of :meth:`to_bytes`."""
        buf = io.BytesIO(data)
        header = pickle.load(buf)
        if not (isinstance(header, tuple) and len(header) == 4
                and header[0] == cls.MAGIC):
            raise CheckpointError("not a repro checkpoint (bad header)")
        _, time, seq, boundary = header
        state = pickle.load(buf)
        cp = cls(time, seq, state)
        cp.boundary = boundary
        return cp

    def save(self, path) -> int:
        """Write the checkpoint to ``path``; returns the byte count."""
        data = self.to_bytes()
        with open(path, "wb") as fh:
            fh.write(data)
        return len(data)

    @classmethod
    def load(cls, path) -> "Checkpoint":
        """Read a checkpoint written by :meth:`save`."""
        with open(path, "rb") as fh:
            return cls.from_bytes(fh.read())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Checkpoint t={self.time:.6f} seq={self.seq}>"


class CheckpointManager:
    """Periodic auto-checkpoints into a bounded ring.

    ``start()`` schedules a snapshot every ``interval`` sim-seconds;
    the newest ``keep`` checkpoints are retained.  ``nearest_before``
    answers the triage question "which snapshot lets me replay up to
    this violation?".

    The manager participates in its own snapshots (its periodic event
    is on the heap), but the ring of already-taken checkpoints is
    deliberately *excluded* from the copy — snapshots of snapshots
    would compound geometrically.  A restored manager therefore resumes
    auto-checkpointing on cadence, into an empty ring of its own.
    """

    def __init__(self, sim, roots: Optional[Dict[str, Any]] = None,
                 interval: float = 5.0, keep: int = 8):
        if interval <= 0:
            raise ValueError("checkpoint interval must be positive")
        if keep < 1:
            raise ValueError("must keep at least one checkpoint")
        self.sim = sim
        self.roots = dict(roots or {})
        self.interval = interval
        self.keep = keep
        self.checkpoints: deque = deque(maxlen=keep)
        #: total snapshots taken (ring may have dropped older ones)
        self.taken = 0
        self._event = None

    def start(self) -> "CheckpointManager":
        """Begin auto-checkpointing every ``interval`` sim-seconds."""
        if self._event is None or not self._event.pending:
            self._event = self.sim.schedule_periodic(
                self.interval, self._take)
        return self

    def stop(self) -> None:
        """Stop auto-checkpointing (retained snapshots survive)."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def take(self) -> Checkpoint:
        """Snapshot immediately (also appended to the ring)."""
        cp = Checkpoint.capture(self.sim, self.roots)
        if self._event is not None and self._event.pending:
            # The run loop re-armed our periodic event before calling
            # _take, so the capture dispatch is traced under the NEXT
            # firing's (time, seq) — record that as the trace boundary.
            cp.boundary = (self._event.time, self._event.seq)
        self.checkpoints.append(cp)
        self.taken += 1
        return cp

    def _take(self) -> None:
        self.take()

    def nearest_before(self, time: float) -> Optional[Checkpoint]:
        """Latest retained checkpoint with ``cp.time < time`` (or None)."""
        best = None
        for cp in self.checkpoints:
            if cp.time < time and (best is None or cp.time > best.time):
                best = cp
        return best

    def latest(self) -> Optional[Checkpoint]:
        """Most recent retained checkpoint (or None)."""
        return self.checkpoints[-1] if self.checkpoints else None

    def __deepcopy__(self, memo):
        # Taken from inside Checkpoint.capture: clone everything except
        # the checkpoint ring (no snapshots-of-snapshots).
        clone = object.__new__(CheckpointManager)
        memo[id(self)] = clone
        clone.interval = self.interval
        clone.keep = self.keep
        clone.taken = 0
        clone.checkpoints = deque(maxlen=self.keep)
        clone.sim = copy.deepcopy(self.sim, memo)
        clone.roots = copy.deepcopy(self.roots, memo)
        clone._event = copy.deepcopy(self._event, memo)
        return clone

    def __reduce__(self):
        # Pickled inside Checkpoint.to_bytes: same exclusion as deepcopy.
        return (_rebuild_manager,
                (self.sim, self.roots, self.interval, self.keep,
                 self._event))


def _rebuild_manager(sim, roots, interval, keep, event):
    mgr = CheckpointManager(sim, roots, interval=interval, keep=keep)
    mgr._event = event
    return mgr


class TraceHook:
    """A deterministic event-trace recorder for resume verification.

    Install with ``attach``: records ``(time, seq, qualname)`` per
    dispatched event — the exact byte-comparable signature the kernel
    determinism tests use.  A plain object (not a closure) so tests and
    tools can keep one recipe for both original and restored runs.
    """

    def __init__(self):
        self.entries: List[Tuple[float, int, str]] = []

    def attach(self, sim) -> "TraceHook":
        sim.on_event = self
        return self

    def __call__(self, ev) -> None:
        self.entries.append(
            (ev.time, ev.seq, getattr(ev.fn, "__qualname__", repr(ev.fn))))

    def suffix_after(self, checkpoint) -> List[Tuple[float, int, str]]:
        """Entries after the dispatch that took ``checkpoint``.

        Uses the checkpoint's trace ``boundary`` (see
        :attr:`Checkpoint.boundary`): everything recorded after that
        entry is what a restored run must reproduce byte-identically.
        """
        boundary = checkpoint.boundary
        if boundary is None:
            raise ValueError(
                "checkpoint has no trace boundary (taken outside the "
                "run loop) — slice entries by length instead")
        for i, entry in enumerate(self.entries):
            if (entry[0], entry[1]) == boundary:
                return self.entries[i + 1:]
        raise ValueError(f"boundary {boundary} not found in trace")
