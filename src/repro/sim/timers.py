"""Restartable one-shot timers built on the event scheduler.

TCP and the MAC layer juggle many timers (retransmit, delayed-ACK,
persist, keepalive, link-retry, poll).  :class:`Timer` wraps the
schedule/cancel dance: ``start`` (re)arms, ``stop`` disarms, and the
callback only fires if the timer is still armed.  This mirrors the
"tickless timer" adaptation described in §4.1 of the paper.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.engine import Event, Simulator

#: When True (the default), timers record themselves in their
#: simulator's armed-timer registry on start and withdraw on stop/fire.
#: ``tools/bench.py --verify-overhead`` flips this off to measure what
#: the bookkeeping costs relative to a registry-free build.
_registry_enabled = True


def registry_enabled(enable: bool) -> None:
    """Toggle armed-timer registration for *subsequently built* timers."""
    global _registry_enabled
    _registry_enabled = enable


class Timer:
    """A restartable one-shot timer.

    The callback receives no arguments; bind state via closure or
    functools.partial at construction time.
    """

    def __init__(self, sim: Simulator, callback: Callable[[], Any], name: str = ""):
        self.sim = sim
        self.callback = callback
        self.name = name
        self._event: Optional[Event] = None
        self._registry = (
            getattr(sim, "_armed_timers", None) if _registry_enabled else None
        )

    @property
    def armed(self) -> bool:
        """True if the timer is pending."""
        return self._event is not None and self._event.pending

    @property
    def expiry(self) -> Optional[float]:
        """Absolute expiry time if armed, else None."""
        if self.armed:
            assert self._event is not None
            return self._event.time
        return None

    def start(self, delay: float) -> None:
        """(Re)arm the timer ``delay`` seconds from now."""
        self.stop()
        self._event = self.sim.schedule(delay, self._fire)
        if self._registry is not None:
            self._registry.add(self)

    def start_if_idle(self, delay: float) -> None:
        """Arm the timer only if it is not already armed."""
        if not self.armed:
            self.start(delay)

    def stop(self) -> None:
        """Disarm the timer if armed."""
        if self._event is not None:
            self._event.cancel()
            self._event = None
        if self._registry is not None:
            self._registry.discard(self)

    def remaining(self) -> float:
        """Seconds until expiry (0.0 if not armed)."""
        if self.armed:
            assert self._event is not None
            return max(0.0, self._event.time - self.sim.now)
        return 0.0

    def _fire(self) -> None:
        self._event = None
        if self._registry is not None:
            self._registry.discard(self)
        self.callback()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"armed@{self.expiry:.6f}" if self.armed else "idle"
        return f"<Timer {self.name or self.callback!r} {state}>"


class PeriodicTimer:
    """A repeating timer built on ``Simulator.schedule_periodic``.

    Unlike re-arming a :class:`Timer` from its own callback, the
    underlying Event object is reused tick after tick — no allocation
    per period.  ``start`` (re)starts the cadence from now; ``ensure``
    is a cheap no-op when the requested interval is already in force
    (the common case for a fixed-cadence poll loop).
    """

    def __init__(self, sim: Simulator, callback: Callable[[], Any], name: str = ""):
        self.sim = sim
        self.callback = callback
        self.name = name
        self._event: Optional[Event] = None
        self._interval: Optional[float] = None
        self._registry = (
            getattr(sim, "_armed_timers", None) if _registry_enabled else None
        )

    @property
    def armed(self) -> bool:
        """True while the timer is ticking."""
        return self._event is not None and not self._event.cancelled

    @property
    def interval(self) -> Optional[float]:
        """The period currently in force, or None when stopped."""
        return self._interval if self.armed else None

    @property
    def expiry(self) -> Optional[float]:
        """Absolute time of the next tick, or None when stopped."""
        if self.armed:
            assert self._event is not None
            return self._event.time
        return None

    def start(self, interval: float) -> None:
        """(Re)start firing every ``interval`` seconds, first in ``interval``."""
        self.stop()
        self._event = self.sim.schedule_periodic(interval, self.callback)
        self._interval = interval
        if self._registry is not None:
            self._registry.add(self)

    def ensure(self, interval: float) -> None:
        """Keep the cadence if unchanged; otherwise restart at ``interval``."""
        if not self.armed or self._interval != interval:
            self.start(interval)

    def stop(self) -> None:
        """Stop the repetition."""
        if self._event is not None:
            self._event.cancel()
            self._event = None
            self._interval = None
        if self._registry is not None:
            self._registry.discard(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            f"every {self._interval:.6f}" if self.armed else "idle"
        )
        return f"<PeriodicTimer {self.name or self.callback!r} {state}>"
