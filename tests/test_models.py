"""Analytical models: Equations 1/2, goodput bounds, memory, tables."""

import pytest

from repro.models.headers import table5_rows, table6_rows
from repro.models.memory import (
    PAPER_RIOT,
    PAPER_TINYOS,
    buffer_memory,
    modelled_passive_bytes,
    modelled_tcb_bytes,
    tcplp_memory_riot,
    tcplp_memory_tinyos,
)
from repro.models.platforms import PLATFORMS, phy_profile
from repro.models.throughput import (
    bandwidth_delay_product,
    lln_model_goodput,
    mathis_goodput,
    multihop_bound,
    single_hop_ceiling,
)


class TestThroughputModels:
    def test_single_hop_ceiling_is_about_82_kbps(self):
        # §6.4: 462 B per 5-frame segment over 41 ms + ~4.1/2 ms of ACK
        assert single_hop_ceiling() == pytest.approx(82_000, rel=0.08)

    def test_multihop_bound_thirds(self):
        b = 82_000.0
        assert multihop_bound(b, 1) == b
        assert multihop_bound(b, 2) == b / 2
        assert multihop_bound(b, 3) == pytest.approx(b / 3)
        # beyond three hops, pipelining holds the bound at B/3 (§7.2)
        assert multihop_bound(b, 4) == pytest.approx(b / 3)
        assert multihop_bound(b, 10) == pytest.approx(b / 3)

    def test_eq2_window_limited_when_lossless(self):
        # with p = 0, Equation 2 reduces to w * MSS / RTT
        b = lln_model_goodput(448, rtt=0.2, p=0.0, w=4)
        assert b == pytest.approx(4 * 448 * 8 / 0.2)

    def test_eq2_robust_to_small_loss(self):
        # §8: the 1/w term dominates for small p — 1% loss costs little
        clean = lln_model_goodput(448, 0.2, 0.0, 4)
        lossy = lln_model_goodput(448, 0.2, 0.01, 4)
        assert lossy > 0.9 * clean

    def test_eq1_overpredicts_in_lln_regime(self):
        # §8: Mathis, unaware of the tiny window, predicts hundreds of
        # kb/s for the single-hop experiment
        p, rtt = 0.01, 0.2
        eq1 = mathis_goodput(448, rtt, p)
        eq2 = lln_model_goodput(448, rtt, p, 4)
        assert eq1 > 2 * eq2
        assert eq1 > 200_000

    def test_eq2_more_sensitive_at_high_loss(self):
        lo = lln_model_goodput(448, 0.2, 0.01, 4)
        hi = lln_model_goodput(448, 0.2, 0.10, 4)
        assert hi < lo / 1.5

    def test_bdp_matches_paper_example(self):
        # §6.2: 125 kb/s x 0.1 s ≈ 1.6 KiB
        assert bandwidth_delay_product(125_000, 0.1) == pytest.approx(1562.5)

    def test_model_input_validation(self):
        with pytest.raises(ValueError):
            mathis_goodput(448, 0.2, 0.0)
        with pytest.raises(ValueError):
            lln_model_goodput(448, 0.0, 0.1, 4)
        with pytest.raises(ValueError):
            lln_model_goodput(448, 0.2, 0.1, 0)
        with pytest.raises(ValueError):
            multihop_bound(1000, 0)


class TestMemoryModel:
    def test_modelled_tcb_in_paper_band(self):
        # Tables 3/4: protocol state of an active socket is 364-488 B
        assert 300 <= modelled_tcb_bytes() <= 520

    def test_passive_socket_is_tiny(self):
        # §4.1: passive sockets hold an order of magnitude less state
        assert modelled_passive_bytes() <= 20
        assert modelled_passive_bytes() * 10 < modelled_tcb_bytes()

    def test_paper_reference_tables(self):
        t3 = tcplp_memory_tinyos()
        assert t3.ram_active_protocol == 488
        assert t3.rom_protocol == 21352
        t4 = tcplp_memory_riot()
        assert t4.ram_active_protocol == 364

    def test_active_state_fraction_of_ram(self):
        # §4.2: < 2% of the Cortex-M0+'s 32 KiB, < 1% of the M4's 64 KiB
        assert PAPER_RIOT.fraction_of_ram(32 * 1024) < 0.02
        assert PAPER_TINYOS.fraction_of_ram(64 * 1024) < 0.01

    def test_buffer_memory_dominates(self):
        buffers = buffer_memory(mss=448, window_segments=4)
        assert buffers["total"] > 4 * modelled_tcb_bytes()

    def test_bitmap_cheaper_than_second_buffer(self):
        with_bitmap = buffer_memory(448, 4, reassembly_bitmap=True)
        naive = buffer_memory(448, 4, reassembly_bitmap=False)
        assert with_bitmap["total"] < naive["total"]
        assert with_bitmap["reassembly_bitmap"] == (448 * 4 + 7) // 8


class TestStaticTables:
    def test_table5_802154_frame_time(self):
        rows = {r.name: r for r in table5_rows()}
        lln = rows["IEEE 802.15.4"]
        assert lln.tx_time == pytest.approx(4.1e-3, rel=0.02)
        # orders of magnitude apart from ethernet-class links
        assert rows["Gigabit Ethernet"].tx_time < 20e-6

    def test_table6_totals_match_paper(self):
        rows = {r.protocol: r for r in table6_rows()}
        total = rows["Total"]
        # paper: first frame 50-107 B; later frames 28-35 B.  Our frag
        # headers are the RFC 4944 4/5 B (the paper's 5-12 B row also
        # counts a mesh header), so the first-frame band is 49-99.
        assert 45 <= total.first_frame_min <= 55
        assert 95 <= total.first_frame_max <= 110
        assert total.other_frames_min == 28
        assert rows["IPv6"].first_frame_min == 2
        assert rows["IPv6"].first_frame_max == 28
        assert rows["TCP"].first_frame_max == 44

    def test_platform_profiles(self):
        assert PLATFORMS["hamilton"].spi_overhead_factor == 2.0
        telosb = phy_profile("telosb")
        hamilton = phy_profile("hamilton")
        assert telosb.frame_tx_time(127) > 2 * hamilton.frame_tx_time(127)
