"""FreeBSD-heritage TCP extensions: header prediction, Nagle,
keepalives, challenge-ACK rate limiting, bad-retransmit undo."""

from repro.core.connection import TcpState
from repro.core.segment import FLAG_RST, Segment
from repro.core.simplified import tcplp_params
from repro.core.socket_api import TcpStack
from repro.experiments.topology import build_pair
from repro.experiments.workload import BulkTransfer


def make_conn_pair(seed=0, params_a=None, params_b=None):
    net = build_pair(seed=seed)
    sa = TcpStack(net.sim, net.nodes[0].ipv6, 0, cpu=net.nodes[0].radio.cpu)
    sb = TcpStack(net.sim, net.nodes[1].ipv6, 1, cpu=net.nodes[1].radio.cpu)
    server_conns = []
    sb.listen(8000, server_conns.append, params=params_b or tcplp_params())
    conn = sa.connect(1, 8000, params=params_a or tcplp_params())
    net.sim.run(until=2.0)
    return net, conn, server_conns[0]


class TestHeaderPrediction:
    def test_bulk_transfer_mostly_fast_path(self):
        net = build_pair(seed=30)
        sa = TcpStack(net.sim, net.nodes[0].ipv6, 0)
        sb = TcpStack(net.sim, net.nodes[1].ipv6, 1)
        xfer = BulkTransfer(net.sim, sa, sb, receiver_id=1,
                            params=tcplp_params(),
                            receiver_params=tcplp_params())
        xfer.measure(5.0, 20.0)
        # receiver side: nearly every data segment is the predicted one
        rx = [c for c in sb._connections.values()][0] if sb._connections else None
        counters = sb.trace.counters
        predicted = counters.get("tcp.header_predictions")
        received = counters.get("tcp.segs_rcvd")
        assert predicted > 0.6 * received

    def test_prediction_disabled_by_flag(self):
        params = tcplp_params()
        params.header_prediction = False
        net, conn, server = make_conn_pair(params_a=params, params_b=params)
        conn.send(b"x" * 500)
        net.sim.run(until=5.0)
        assert server.trace.counters.get("tcp.header_predictions") == 0


class TestNagle:
    def test_nagle_coalesces_small_writes(self):
        def run(nagle):
            params = tcplp_params()
            params.nagle = nagle
            params.delayed_ack = False  # isolate Nagle's effect
            net, conn, server = make_conn_pair(seed=31, params_a=params,
                                               params_b=params)
            base = conn.trace.counters.get("tcp.data_segs_sent")
            # a burst of tiny writes in one event
            for _ in range(10):
                conn.send(b"ab")
            net.sim.run(until=10.0)
            return conn.trace.counters.get("tcp.data_segs_sent") - base

        with_nagle = run(True)
        without = run(False)
        assert with_nagle < without

    def test_nagle_never_strands_data(self):
        params = tcplp_params()
        params.nagle = True
        net, conn, server = make_conn_pair(seed=32, params_a=params,
                                           params_b=params)
        got = []
        server.on_data = got.append
        for _ in range(7):
            conn.send(b"tiny")
        net.sim.run(until=10.0)
        assert b"".join(got) == b"tiny" * 7


class TestKeepalive:
    def make_keepalive_pair(self, seed=33, idle=5.0, interval=1.0, probes=3):
        params = tcplp_params()
        params.keepalive = True
        params.keepalive_idle = idle
        params.keepalive_interval = interval
        params.keepalive_probes = probes
        return make_conn_pair(seed=seed, params_a=params,
                              params_b=tcplp_params())

    def test_idle_connection_probed_and_survives(self):
        net, conn, server = self.make_keepalive_pair()
        net.sim.run(until=30.0)
        assert conn.trace.counters.get("tcp.keepalive_probes") >= 1
        assert conn.state is TcpState.ESTABLISHED

    def test_dead_peer_detected(self):
        net, conn, server = self.make_keepalive_pair()
        errors = []
        conn.on_error = errors.append
        net.sim.run(until=3.0)
        net.medium.block_link(0, 1)  # peer unreachable
        net.sim.run(until=60.0)
        assert errors == ["connection timed out (keepalive)"]
        assert conn.state is TcpState.CLOSED

    def test_traffic_suppresses_probes(self):
        net, conn, server = self.make_keepalive_pair(idle=5.0)

        def chat():
            if conn.is_open:
                conn.send(b"ping")
                net.sim.schedule(2.0, chat)

        net.sim.schedule(0.5, chat)
        net.sim.run(until=20.0)
        assert conn.trace.counters.get("tcp.keepalive_probes") == 0


class TestChallengeAckRateLimit:
    def test_blind_rst_flood_is_throttled(self):
        net, conn, server = make_conn_pair(seed=34)
        packet = type("P", (), {"src": 1, "ecn": 0})()
        for _ in range(50):
            evil = Segment(src_port=server.local_port,
                           dst_port=conn.local_port,
                           seq=(conn.rcv_nxt + 7) % (1 << 32),
                           flags=FLAG_RST)
            conn.on_segment(evil, packet)
        counters = conn.trace.counters
        assert counters.get("tcp.challenge_acks") <= conn.params.challenge_ack_limit
        assert counters.get("tcp.challenge_acks_suppressed") >= 30
        assert conn.state is TcpState.ESTABLISHED


class TestBadRetransmitUndo:
    def _delayed_ack_scenario(self, seed=35):
        """Send data, then deliver a crafted ACK that echoes a timestamp
        *older* than a (simulated) RTO retransmission — exactly what a
        delayed-but-not-lost ACK looks like after a spurious timeout."""
        from repro.core.options import TcpOptions
        from repro.core.segment import FLAG_ACK

        net, conn, server = make_conn_pair(seed=seed)
        conn.send(b"Q" * 400)
        net.sim.run(until=net.sim.now + 0.02)  # data in flight, no ACK yet
        assert conn.flight_size() > 0
        # pretend the RTO just fired: the engine snapshots cwnd/ssthresh
        # (values below max_window so later clamping can't mask the undo)
        saved_cwnd, saved_ssthresh = 900, 4444
        conn._badrexmit = {
            "cwnd": saved_cwnd,
            "ssthresh": saved_ssthresh,
            "ts": conn._now_ts() + 500,  # retransmission is 'in the future'
        }
        ack = Segment(
            src_port=server.local_port, dst_port=conn.local_port,
            seq=conn.rcv_nxt, ack=conn.snd_nxt, flags=FLAG_ACK,
            window=4096,
            options=TcpOptions(ts_val=conn.ts_recent,
                               ts_ecr=conn._now_ts()),  # pre-RTO echo
        )
        packet = type("P", (), {"src": 1, "ecn": 0})()
        conn.on_segment(ack, packet)
        return conn, saved_cwnd, saved_ssthresh

    def test_spurious_timeout_restores_cwnd(self):
        conn, cwnd, ssthresh = self._delayed_ack_scenario()
        assert conn.trace.counters.get("tcp.bad_retransmits_undone") == 1
        # restored, then grown by at most one MSS by the ACK itself
        assert cwnd <= conn.cc.cwnd <= cwnd + conn.mss
        assert conn.cc.ssthresh == ssthresh
        assert conn._badrexmit is None

    def test_genuine_timeout_not_undone(self):
        """An ACK echoing the retransmission's own timestamp (or newer)
        answers the retransmission — no undo."""
        from repro.core.options import TcpOptions
        from repro.core.segment import FLAG_ACK

        net, conn, server = make_conn_pair(seed=36)
        conn.send(b"Q" * 400)
        net.sim.run(until=net.sim.now + 0.02)
        retransmit_ts = conn._now_ts()
        conn._badrexmit = {"cwnd": 3333, "ssthresh": 4444,
                          "ts": retransmit_ts}
        ack = Segment(
            src_port=server.local_port, dst_port=conn.local_port,
            seq=conn.rcv_nxt, ack=conn.snd_nxt, flags=FLAG_ACK,
            window=4096,
            options=TcpOptions(ts_val=conn.ts_recent, ts_ecr=retransmit_ts),
        )
        packet = type("P", (), {"src": 1, "ecn": 0})()
        conn.on_segment(ack, packet)
        assert conn.trace.counters.get("tcp.bad_retransmits_undone") == 0
        assert conn.cc.cwnd != 3333
        assert conn._badrexmit is None
