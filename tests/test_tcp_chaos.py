"""Fault-injection tests: TCP's end-to-end contract under hostile networks.

The invariant: whatever frames the network mangles, drops, or delays,
the receiving application sees exactly the byte stream the sender
wrote — in order, without gaps or duplicates — or the connection
reports an error.  Silent corruption is never acceptable.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.simplified import tcplp_params, uip_params
from repro.core.socket_api import TcpStack
from repro.experiments.topology import build_chain, build_pair
from repro.phy.medium import UniformLoss
from repro.sim.rng import RngStreams


def run_transfer(net, payload, sender_id, receiver_id, params_tx, params_rx,
                 deadline=600.0):
    stack_tx = TcpStack(net.sim, net.nodes[sender_id].ipv6, sender_id)
    stack_rx = TcpStack(net.sim, net.nodes[receiver_id].ipv6, receiver_id)
    got = []
    done = []

    def on_accept(conn):
        conn.on_data = got.append

    stack_rx.listen(8000, on_accept, params=params_rx)
    conn = stack_tx.connect(receiver_id, 8000, params=params_tx)
    errors = []
    conn.on_error = errors.append
    sent = [0]

    def fill():
        while sent[0] < len(payload) and conn.send_buf.free > 0:
            n = conn.send(payload[sent[0]: sent[0] + 512])
            if n == 0:
                break
            sent[0] += n

    conn.on_connect = fill
    conn.on_send_space = fill
    net.sim.run(until=deadline)
    return b"".join(got), errors


@settings(max_examples=12, deadline=None)
@given(
    loss=st.floats(min_value=0.0, max_value=0.25),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_stream_integrity_under_random_frame_loss(loss, seed):
    net = build_pair(seed=seed)
    net.medium.loss_models.append(
        UniformLoss(loss, RngStreams(seed + 1))
    )
    payload = bytes(range(256)) * 24  # 6 KiB, position-identifying bytes
    data, errors = run_transfer(net, payload, 0, 1,
                                tcplp_params(), tcplp_params())
    if not errors:
        assert data == payload
    else:
        # a declared failure is acceptable; silent corruption is not
        assert data == payload[: len(data)]


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_stream_integrity_multihop_with_hidden_terminals(seed):
    net = build_chain(3, seed=seed, with_cloud=False)
    # d = 0: worst-case hidden-terminal collisions (§7.1)
    payload = bytes((i * 7 + 3) % 256 for i in range(4096))
    data, errors = run_transfer(net, payload, 3, 0,
                                tcplp_params(), tcplp_params())
    if not errors:
        assert data == payload
    else:
        assert data == payload[: len(data)]


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_stream_integrity_asymmetric_params(seed):
    """A full-featured sender against a crippled uIP-like receiver."""
    net = build_pair(seed=seed)
    net.medium.loss_models.append(UniformLoss(0.1, RngStreams(seed + 7)))
    payload = bytes((i * 13 + 1) % 256 for i in range(2048))
    data, errors = run_transfer(net, payload, 0, 1,
                                tcplp_params(), uip_params(mss_frames=4))
    if not errors:
        assert data == payload
    else:
        assert data == payload[: len(data)]


def test_route_change_mid_transfer():
    """Re-route the flow through a different relay mid-transfer; TCP's
    retransmissions absorb the disruption."""
    net = build_chain(3, seed=77, with_cloud=False)
    # add an alternate relay (node 9) parallel to node 2
    from repro.net.node import Node
    alt = Node(net.sim, net.medium, net.rng, 9, (16.0, 3.0), net.routing)
    net.nodes[9] = alt
    payload = bytes(range(256)) * 16
    stack_tx = TcpStack(net.sim, net.nodes[3].ipv6, 3)
    stack_rx = TcpStack(net.sim, net.nodes[0].ipv6, 0)
    got = []
    stack_rx.listen(8000, lambda c: setattr(c, "on_data", got.append),
                    params=tcplp_params())
    conn = stack_tx.connect(0, 8000, params=tcplp_params())
    sent = [0]

    def fill():
        while sent[0] < len(payload) and conn.send_buf.free > 0:
            n = conn.send(payload[sent[0]: sent[0] + 512])
            sent[0] += n
            if n == 0:
                break

    conn.on_connect = fill
    conn.on_send_space = fill

    def reroute():
        # switch the middle relay from node 2 to node 9
        net.routing.set_route(3, 0, 9)
        net.routing.set_route(9, 0, 1)
        net.routing.set_route(1, 3, 9)
        net.routing.set_route(9, 3, 3)

    net.sim.schedule(2.0, reroute)
    net.sim.run(until=120.0)
    assert b"".join(got) == payload


def test_border_router_blackout_and_recovery():
    """The first hop dies for 5 seconds mid-flow; the connection
    backs off, survives, and finishes once the link heals."""
    net = build_pair(seed=88)
    payload = bytes(range(256)) * 48  # big enough to straddle the outage
    data_box = []
    stack_tx = TcpStack(net.sim, net.nodes[0].ipv6, 0)
    stack_rx = TcpStack(net.sim, net.nodes[1].ipv6, 1)
    stack_rx.listen(8000, lambda c: setattr(c, "on_data", data_box.append),
                    params=tcplp_params())
    conn = stack_tx.connect(1, 8000, params=tcplp_params())
    sent = [0]

    def fill():
        while sent[0] < len(payload) and conn.send_buf.free > 0:
            n = conn.send(payload[sent[0]: sent[0] + 512])
            sent[0] += n
            if n == 0:
                break

    conn.on_connect = fill
    conn.on_send_space = fill
    net.sim.schedule(0.3, lambda: net.medium.block_link(0, 1))
    net.sim.schedule(5.3, net.medium._blocked_links.clear)
    net.sim.run(until=120.0)
    assert b"".join(data_box) == payload
    assert conn.trace.counters.get("tcp.rto_events") >= 1
