"""Fault-injection tests: TCP's end-to-end contract under hostile networks.

The invariant: whatever frames the network mangles, drops, or delays,
the receiving application sees exactly the byte stream the sender
wrote — in order, without gaps or duplicates — or the connection
reports an error.  Silent corruption is never acceptable.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.simplified import tcplp_params, uip_params
from repro.core.socket_api import TcpStack
from repro.experiments.topology import build_chain, build_pair
from repro.faults import FaultInjector, FaultSchedule, invariants
from repro.faults.models import SkewedClock
from repro.phy.medium import UniformLoss
from repro.sim.rng import RngStreams


def run_transfer(net, payload, sender_id, receiver_id, params_tx, params_rx,
                 deadline=600.0):
    stack_tx = TcpStack(net.sim, net.nodes[sender_id].ipv6, sender_id)
    stack_rx = TcpStack(net.sim, net.nodes[receiver_id].ipv6, receiver_id)
    got = []
    done = []

    def on_accept(conn):
        conn.on_data = got.append

    stack_rx.listen(8000, on_accept, params=params_rx)
    conn = stack_tx.connect(receiver_id, 8000, params=params_tx)
    errors = []
    conn.on_error = errors.append
    sent = [0]

    def fill():
        while sent[0] < len(payload) and conn.send_buf.free > 0:
            n = conn.send(payload[sent[0]: sent[0] + 512])
            if n == 0:
                break
            sent[0] += n

    conn.on_connect = fill
    conn.on_send_space = fill
    net.sim.run(until=deadline)
    return b"".join(got), errors


@settings(max_examples=12, deadline=None)
@given(
    loss=st.floats(min_value=0.0, max_value=0.25),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_stream_integrity_under_random_frame_loss(loss, seed):
    net = build_pair(seed=seed)
    net.medium.loss_models.append(
        UniformLoss(loss, RngStreams(seed + 1))
    )
    payload = bytes(range(256)) * 24  # 6 KiB, position-identifying bytes
    data, errors = run_transfer(net, payload, 0, 1,
                                tcplp_params(), tcplp_params())
    if not errors:
        assert data == payload
    else:
        # a declared failure is acceptable; silent corruption is not
        assert data == payload[: len(data)]


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_stream_integrity_multihop_with_hidden_terminals(seed):
    net = build_chain(3, seed=seed, with_cloud=False)
    # d = 0: worst-case hidden-terminal collisions (§7.1)
    payload = bytes((i * 7 + 3) % 256 for i in range(4096))
    data, errors = run_transfer(net, payload, 3, 0,
                                tcplp_params(), tcplp_params())
    if not errors:
        assert data == payload
    else:
        assert data == payload[: len(data)]


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_stream_integrity_asymmetric_params(seed):
    """A full-featured sender against a crippled uIP-like receiver."""
    net = build_pair(seed=seed)
    net.medium.loss_models.append(UniformLoss(0.1, RngStreams(seed + 7)))
    payload = bytes((i * 13 + 1) % 256 for i in range(2048))
    data, errors = run_transfer(net, payload, 0, 1,
                                tcplp_params(), uip_params(mss_frames=4))
    if not errors:
        assert data == payload
    else:
        assert data == payload[: len(data)]


def test_route_change_mid_transfer():
    """Re-route the flow through a different relay mid-transfer; TCP's
    retransmissions absorb the disruption."""
    net = build_chain(3, seed=77, with_cloud=False)
    # add an alternate relay (node 9) parallel to node 2
    from repro.net.node import Node
    alt = Node(net.sim, net.medium, net.rng, 9, (16.0, 3.0), net.routing)
    net.nodes[9] = alt
    payload = bytes(range(256)) * 16
    stack_tx = TcpStack(net.sim, net.nodes[3].ipv6, 3)
    stack_rx = TcpStack(net.sim, net.nodes[0].ipv6, 0)
    got = []
    stack_rx.listen(8000, lambda c: setattr(c, "on_data", got.append),
                    params=tcplp_params())
    conn = stack_tx.connect(0, 8000, params=tcplp_params())
    sent = [0]

    def fill():
        while sent[0] < len(payload) and conn.send_buf.free > 0:
            n = conn.send(payload[sent[0]: sent[0] + 512])
            sent[0] += n
            if n == 0:
                break

    conn.on_connect = fill
    conn.on_send_space = fill

    def reroute():
        # switch the middle relay from node 2 to node 9
        net.routing.set_route(3, 0, 9)
        net.routing.set_route(9, 0, 1)
        net.routing.set_route(1, 3, 9)
        net.routing.set_route(9, 3, 3)

    net.sim.schedule(2.0, reroute)
    net.sim.run(until=120.0)
    assert b"".join(got) == payload


def test_border_router_blackout_and_recovery():
    """The first hop dies for 5 seconds mid-flow; the connection
    backs off, survives, and finishes once the link heals."""
    net = build_pair(seed=88)
    payload = bytes(range(256)) * 48  # big enough to straddle the outage
    data_box = []
    stack_tx = TcpStack(net.sim, net.nodes[0].ipv6, 0)
    stack_rx = TcpStack(net.sim, net.nodes[1].ipv6, 1)
    stack_rx.listen(8000, lambda c: setattr(c, "on_data", data_box.append),
                    params=tcplp_params())
    conn = stack_tx.connect(1, 8000, params=tcplp_params())
    sent = [0]

    def fill():
        while sent[0] < len(payload) and conn.send_buf.free > 0:
            n = conn.send(payload[sent[0]: sent[0] + 512])
            sent[0] += n
            if n == 0:
                break

    conn.on_connect = fill
    conn.on_send_space = fill
    net.sim.schedule(0.3, lambda: net.medium.block_link(0, 1))
    net.sim.schedule(5.3, net.medium._blocked_links.clear)
    net.sim.run(until=120.0)
    assert b"".join(data_box) == payload
    assert conn.trace.counters.get("tcp.rto_events") >= 1


# ----------------------------------------------------------------------
# PR 3: seeded random fault schedules (repro.faults)
# ----------------------------------------------------------------------
def _random_chaos_schedule(seed):
    """Bursty loss + 1-2 link flaps + one relay reboot, all derived
    deterministically from the seed."""
    rng = RngStreams(seed)

    def draw():
        return rng.random("chaos-gen")

    faults = [{
        "kind": "bursty_loss",
        "p_good_bad": 0.01 + 0.05 * draw(),
        "p_bad_good": 0.25 + 0.5 * draw(),
    }]
    for _ in range(1 + int(draw() * 2)):
        faults.append({
            "kind": "link_flap", "a": 0, "b": 1,
            "at": 2.0 + 8.0 * draw(),
            "down_for": 0.2 + 1.3 * draw(),
        })
    faults.append({
        "kind": "node_reboot", "node": 1,
        "at": 4.0 + 8.0 * draw(),
        "outage": 0.5 + 2.5 * draw(),
    })
    return FaultSchedule.from_dict(
        {"name": f"chaos-{seed}", "faults": faults})


@pytest.mark.parametrize("seed", range(20))
def test_chaos_schedule_integrity_and_clean_teardown(seed):
    """Property-style: across 20 random compound fault schedules, the
    byte stream stays intact and teardown leaves no armed TCP timer."""
    net = build_chain(2, seed=seed, with_cloud=False)
    for n in net.nodes.values():
        n.mac.params.retry_delay = 0.04
    injector = FaultInjector(net, _random_chaos_schedule(seed)).arm()

    payload = bytes((i * 7 + seed) % 256 for i in range(24 * 1024))
    stack_tx = TcpStack(net.sim, net.nodes[2].ipv6, 2)
    stack_rx = TcpStack(net.sim, net.nodes[0].ipv6, 0)
    got, errors, server_conns = [], [], []
    done_at = [None]

    def on_accept(server_conn):
        server_conns.append(server_conn)
        server_conn.on_data = got.append
        server_conn.on_peer_close = server_conn.close

    stack_rx.listen(8000, on_accept, params=tcplp_params())
    conn = stack_tx.connect(0, 8000, params=tcplp_params(window_segments=4))
    conn.on_error = errors.append
    sent = [0]

    def fill():
        while sent[0] < len(payload) and conn.send_buf.free > 0:
            n = conn.send(payload[sent[0]: sent[0] + 512])
            if n == 0:
                break
            sent[0] += n
        if sent[0] >= len(payload):
            conn.close()

    conn.on_connect = fill
    conn.on_send_space = fill
    conn.on_close = lambda: done_at.__setitem__(0, net.sim.now)
    net.sim.run(until=300.0)

    if errors:
        # the application gives up: release the receiver-side socket so
        # the quiescence check observes a cleaned-up endpoint
        for sc in server_conns:
            sc.abort()
        net.sim.run(until=net.sim.now + 1.0)

    last_fault_at = max(
        (e.time for e in injector.events
         if e.kind in ("link_up", "node_reboot")), default=0.0)
    violations = invariants.check_all(
        net.sim,
        stacks=(stack_tx, stack_rx),
        sent=payload,
        received=b"".join(got),
        errors=errors,
        done_at=done_at[0],
        last_fault_at=last_fault_at,
        recovery_bound=250.0,
    )
    assert violations == [], f"seed {seed}: {violations}"
    assert injector.counts.get("node_crash") == 1


def test_transfer_across_timestamp_wrap():
    """Both endpoints' timestamp clocks wrap 2**32 ms two seconds into
    the transfer; RTT sampling must continue and the stream must
    arrive intact (regression for the ts_ecr == 0 truthiness bug)."""
    net = build_pair(seed=33)
    for node in net.nodes.values():
        node.ipv6.ts_clock = SkewedClock(offset_ms=(1 << 32) - 2000)
    payload = bytes(range(256)) * 128  # 32 KiB: straddles the wrap
    stack_tx = TcpStack(net.sim, net.nodes[0].ipv6, 0)
    stack_rx = TcpStack(net.sim, net.nodes[1].ipv6, 1)
    got = []
    stack_rx.listen(8000, lambda c: setattr(c, "on_data", got.append),
                    params=tcplp_params())
    conn = stack_tx.connect(1, 8000, params=tcplp_params())
    errors = []
    conn.on_error = errors.append
    sent = [0]

    def fill():
        while sent[0] < len(payload) and conn.send_buf.free > 0:
            n = conn.send(payload[sent[0]: sent[0] + 512])
            if n == 0:
                break
            sent[0] += n

    conn.on_connect = fill
    conn.on_send_space = fill
    samples_at_wrap = []
    net.sim.schedule_at(3.0, lambda: samples_at_wrap.append(
        conn.rtt.samples))
    net.sim.run(until=120.0)
    assert not errors
    assert b"".join(got) == payload
    # RTT sampling kept flowing after the wrap (old bug: ts_ecr == 0
    # and post-wrap echoes were treated as absent/insane)
    assert samples_at_wrap and conn.rtt.samples > samples_at_wrap[0]
    assert conn.rtt.srtt is not None and conn.rtt.srtt < 5.0
