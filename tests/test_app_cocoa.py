"""CoCoA RTO estimator: weak/strong estimators, VBF, aging, ratchet."""

import pytest

from repro.app.cocoa import CocoaRtoEstimator


def test_initial_rto_default():
    est = CocoaRtoEstimator()
    assert est.rto == 2.0


def test_strong_samples_track_rtt():
    est = CocoaRtoEstimator()
    for _ in range(50):
        est.on_sample(0.3, weak=False)
    assert est.rto < 1.0
    assert est.strong_samples == 50


def test_weak_sample_inflates_rto():
    est = CocoaRtoEstimator()
    for _ in range(20):
        est.on_sample(0.3, weak=False)
    before = est.rto
    est.on_sample(5.0, weak=True)  # backoff-inflated measurement
    assert est.rto > before


def test_er_cocoa_ratchets_under_a_loss_burst():
    """The §9.4 failure: during a loss burst, every exchange is
    retransmitted and its RTT is measured from the first transmission,
    so each sample includes the (growing) backoff wait — the RTO
    ratchets far above the 0.3 s true RTT."""
    est = CocoaRtoEstimator(mode="er-cocoa")
    for _ in range(20):
        est.on_sample(0.3, weak=False)
    start = est.rto
    for _ in range(12):
        # one backoff of the current RTO plus the true RTT
        est.on_sample(est.rto * (1 + est.backoff_factor()) / 2 + 0.3,
                      weak=True)
    assert est.rto > max(3.0, 4 * start)


def test_spec_mode_ratchets_less():
    def run(mode):
        est = CocoaRtoEstimator(mode=mode)
        for _ in range(30):
            for _ in range(3):
                est.on_sample(0.3, weak=False)
            est.on_sample(est.rto + 0.3, weak=True)
        return est.rto

    assert run("spec") < run("er-cocoa")


def test_variable_backoff_factor():
    est = CocoaRtoEstimator()
    est.rto = 0.5
    assert est.backoff_factor() == 3.0
    est.rto = 2.0
    assert est.backoff_factor() == 2.0
    est.rto = 5.0
    assert est.backoff_factor() == 1.5


def test_aging_decays_large_rto():
    est = CocoaRtoEstimator()
    est.on_sample(0.3, weak=False, now=0.0)
    est.rto = 20.0
    # unused for > 4x RTO: decays as 1 + RTO/2
    assert est.current_rto(now=100.0) == pytest.approx(11.0)


def test_aging_grows_tiny_rto():
    est = CocoaRtoEstimator()
    est.on_sample(0.05, weak=False, now=0.0)
    est.rto = 0.2
    assert est.current_rto(now=10.0) == pytest.approx(0.4)


def test_no_aging_without_clock():
    est = CocoaRtoEstimator()
    est.rto = 20.0
    assert est.current_rto() == 20.0


def test_rto_clamped_to_max():
    est = CocoaRtoEstimator(rto_max=30.0)
    for _ in range(50):
        est.on_sample(100.0, weak=True)
    assert est.rto <= 30.0


def test_rejects_negative_sample():
    with pytest.raises(ValueError):
        CocoaRtoEstimator().on_sample(-1.0, weak=False)


def test_rejects_unknown_mode():
    with pytest.raises(ValueError):
        CocoaRtoEstimator(mode="bogus")
