"""Trickle timer behaviour (RFC 6206)."""

import pytest

from repro.mac.trickle import TrickleTimer
from repro.sim.engine import Simulator


def test_interval_doubles_to_imax():
    sim = Simulator()
    intervals = []
    t = TrickleTimer(sim, imin=1.0, imax=8.0, on_interval=intervals.append)
    t.start()
    sim.run(until=30.0)
    assert intervals[0] == 1.0
    assert max(intervals) == 8.0
    # doubling sequence
    assert intervals[:4] == [1.0, 2.0, 4.0, 8.0]


def test_inconsistency_resets_to_imin():
    sim = Simulator()
    intervals = []
    t = TrickleTimer(sim, imin=1.0, imax=8.0, on_interval=intervals.append)
    t.start()
    sim.schedule(10.0, t.hear_inconsistent)
    sim.run(until=10.5)
    assert intervals[-1] == 1.0


def test_suppression_with_k():
    sim = Simulator()
    fired = []
    t = TrickleTimer(sim, imin=1.0, imax=1.0, k=1,
                     on_transmit=lambda: fired.append(sim.now))
    t.start()
    # a consistent message early in every interval suppresses transmission

    def suppress():
        t.hear_consistent()
        if sim.now < 5:
            sim.schedule(1.0, suppress)

    sim.schedule(0.1, suppress)
    sim.run(until=5.0)
    assert fired == []


def test_transmit_fires_without_suppression():
    sim = Simulator()
    fired = []
    t = TrickleTimer(sim, imin=1.0, imax=1.0, k=1,
                     on_transmit=lambda: fired.append(sim.now))
    t.start()
    sim.run(until=3.5)
    assert len(fired) == 3
    # tx point in the second half of each interval
    for i, when in enumerate(fired):
        assert i + 0.5 <= when <= i + 1.0


def test_stop_halts_callbacks():
    sim = Simulator()
    intervals = []
    t = TrickleTimer(sim, imin=1.0, imax=8.0, on_interval=intervals.append)
    t.start()
    sim.schedule(2.5, t.stop)
    sim.run(until=20.0)
    assert len(intervals) == 2


def test_validates_intervals():
    sim = Simulator()
    with pytest.raises(ValueError):
        TrickleTimer(sim, imin=0, imax=1)
    with pytest.raises(ValueError):
        TrickleTimer(sim, imin=2.0, imax=1.0)
