"""Compatibility acceptance tests for the ``repro.api`` facade.

Three promises are pinned here:

1. every pre-existing deep import path keeps working (the facade adds a
   front door, it does not move the furniture);
2. ``repro.api`` re-exports exactly what its ``__all__`` advertises,
   and each name is the *same object* as the implementation's;
3. the BSD-flavoured socket surface (``listen``/``connect``/
   ``set_option``/``setsockopt``) behaves per the docstrings:
   copy-on-write params, alias resolution, ``TCP_NODELAY`` inversion.
"""

import importlib

import pytest

import repro.api as api


# ----------------------------------------------------------------------
# 1. old deep import paths keep working
# ----------------------------------------------------------------------

#: (module path, names that existing code imports from it)
LEGACY_IMPORTS = [
    ("repro", ["Simulator", "TcpParams", "TcpStack", "TcpSocket",
               "build_chain", "build_pair", "build_testbed",
               "build_grid_mesh", "build_random_mesh",
               "tcplp_params", "uip_params", "CLOUD_ID"]),
    ("repro.sim.engine", ["Simulator"]),
    ("repro.sim.rng", ["RngStreams"]),
    ("repro.sim.metrics", ["MetricsRegistry"]),
    ("repro.core.params", ["TcpParams", "linux_like_params",
                           "mss_for_frames"]),
    ("repro.core.simplified", ["tcplp_params", "uip_params",
                               "blip_params", "gnrc_params",
                               "arch_rock_params"]),
    ("repro.core.socket_api", ["TcpStack", "TcpSocket", "TcpListener"]),
    ("repro.core.connection", ["TcpConnection", "TcpState"]),
    ("repro.experiments.topology", ["Network", "CLOUD_ID", "build_pair",
                                    "build_single_hop", "build_chain",
                                    "build_testbed", "build_grid_mesh",
                                    "build_random_mesh"]),
    ("repro.experiments.workload", ["BulkTransfer", "BulkResult",
                                    "GoodputMeter", "SensorStream",
                                    "FlowSet", "FlowSpec", "FlowResult",
                                    "FlowSetResult", "jain_fairness"]),
    ("repro.experiments", ["build_chain", "build_testbed",
                           "build_grid_mesh", "BulkTransfer",
                           "FlowSet"]),
    ("repro.faults", ["FaultSchedule", "FaultInjector"]),
]


@pytest.mark.parametrize("module_path,names", LEGACY_IMPORTS,
                         ids=[m for m, _ in LEGACY_IMPORTS])
def test_legacy_import_path_still_works(module_path, names):
    module = importlib.import_module(module_path)
    for name in names:
        assert hasattr(module, name), f"{module_path}.{name} vanished"


# ----------------------------------------------------------------------
# 2. the facade exports what it advertises, as the same objects
# ----------------------------------------------------------------------

def test_api_all_is_complete_and_resolvable():
    for name in api.__all__:
        assert getattr(api, name, None) is not None, f"repro.api.{name}"


def test_api_names_are_the_implementation_objects():
    from repro.core.socket_api import TcpListener, TcpSocket, TcpStack
    from repro.experiments.topology import Network, build_grid_mesh
    from repro.experiments.workload import BulkTransfer, FlowSet
    from repro.sim.engine import Simulator

    assert api.TcpStack is TcpStack
    assert api.TcpSocket is TcpSocket
    assert api.TcpListener is TcpListener
    assert api.Network is Network
    assert api.build_grid_mesh is build_grid_mesh
    assert api.BulkTransfer is BulkTransfer
    assert api.FlowSet is FlowSet
    assert api.Simulator is Simulator


def test_make_simulator_selects_kernel_tiers():
    from repro.sim.fastcore import FastSimulator

    sim = api.make_simulator()
    assert type(sim) is api.Simulator
    assert (sim.accel, sim.fidelity) == (False, "full")

    fast = api.make_simulator(accel=True)
    assert type(fast) is FastSimulator
    assert isinstance(fast, api.Simulator)  # substitutable everywhere
    assert fast.accel is True and fast.hybrid is None

    hybrid = api.make_simulator(fidelity="hybrid")
    assert type(hybrid) is FastSimulator
    assert hybrid.hybrid is not None


def test_simulator_constructor_matches_make_simulator():
    from repro.sim.fastcore import FastSimulator

    # the facade helper and the constructor are the same dispatch
    assert type(api.Simulator(accel=True)) is FastSimulator
    assert type(api.Simulator()) is api.Simulator


def test_topology_builders_thread_kernel_knobs():
    from repro.sim.fastcore import FastSimulator

    net = api.build_pair(seed=0, accel=True)
    assert type(net.sim) is FastSimulator
    net2 = api.build_chain(2, seed=0, fidelity="hybrid")
    assert net2.sim.hybrid is not None
    net3 = api.build_pair(seed=0)
    assert type(net3.sim) is api.Simulator


def test_run_experiments_is_callable_with_runner_signature():
    import inspect

    sig = inspect.signature(api.run_experiments)
    for param in ("quick", "only", "jobs", "collect_metrics",
                  "fault_spec"):
        assert param in sig.parameters


# ----------------------------------------------------------------------
# 3. BSD socket-option surface
# ----------------------------------------------------------------------

def _pair_with_stacks():
    net = api.build_pair(seed=0)

    def stack(nid):
        node = net.nodes[nid]
        return api.TcpStack(net.sim, node.ipv6, nid,
                            cpu=node.radio.cpu, sleepy=node.sleepy)

    return net, stack(0), stack(1)


def test_setsockopt_getsockopt_are_aliases():
    from repro.core.connection import TcpConnection

    assert api.TcpStack.setsockopt is api.TcpStack.set_option
    assert api.TcpStack.getsockopt is api.TcpStack.get_option
    assert TcpConnection.setsockopt is TcpConnection.set_option
    assert TcpConnection.getsockopt is TcpConnection.get_option
    # TcpSocket is the connection class under its API-surface name
    assert api.TcpSocket is TcpConnection


def test_bsd_alias_resolution_and_nodelay_inversion():
    net, server, client = _pair_with_stacks()
    server.listen(80, lambda c: None)
    sock = client.connect(0, 80)
    net.sim.run(until=net.sim.now + 2.0)
    assert sock.is_open

    # TCP_NODELAY is the negation of the nagle field, both directions
    sock.setsockopt("TCP_NODELAY", True)
    assert sock.params.nagle is False
    assert sock.getsockopt("TCP_NODELAY") is True
    assert sock.get_option("nagle") is False

    sock.set_option("SO_KEEPALIVE", True)
    assert sock.params.keepalive is True
    assert sock.getsockopt("SO_KEEPALIVE") is True

    assert sock.getsockopt("SO_SNDBUF") == sock.params.send_buffer
    assert sock.getsockopt("TCP_MAXSEG") == sock.params.mss


def test_connection_set_option_copies_shared_params():
    net, server, client = _pair_with_stacks()
    shared = api.tcplp_params()
    server.listen(80, lambda c: None, params=shared)
    sock = client.connect(0, 80, params=shared)
    net.sim.run(until=net.sim.now + 2.0)

    before = shared.rto_min
    sock.set_option("rto_min", before * 2)
    assert sock.params.rto_min == before * 2
    assert shared.rto_min == before, "shared TcpParams was mutated"
    assert sock.params is not shared


def test_stack_set_option_scopes_to_future_default_sockets():
    net, server, client = _pair_with_stacks()
    shared_default = client.default_params
    server.listen(80, lambda c: None)
    server.listen(81, lambda c: None)

    client.set_option("SO_SNDBUF", 4096)
    assert client.default_params.send_buffer == 4096
    assert shared_default.send_buffer != 4096 or \
        shared_default is not client.default_params

    # future default-params socket sees the option
    sock = client.connect(0, 80)
    assert sock.params.send_buffer == 4096
    # explicit params= wins over the stack default
    explicit = api.tcplp_params()
    sock2 = client.connect(0, 81, params=explicit)
    assert sock2.params.send_buffer == explicit.send_buffer


def test_unknown_option_raises_value_error():
    net, _server, client = _pair_with_stacks()
    with pytest.raises(ValueError, match="unknown socket option"):
        client.set_option("SO_BOGUS", 1)
    with pytest.raises(ValueError, match="unknown socket option"):
        client.get_option("_mss")  # private names are not options
