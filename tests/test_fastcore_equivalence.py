"""Accelerated-kernel equivalence oracle (repro.sim.fastcore).

The contract: ``Simulator(accel=True)`` is a pure speed change.  Same
seed, byte-identical event trace — times, sequence numbers and dispatch
order — on every scenario family the bench suite covers (clean chain,
dense mesh, compound chaos faults), across seeds.  The oracle kernel in
``repro.sim.engine`` is deliberately untouched so any fast-kernel bug
shows up as a trace divergence here, not as a silently different result.

``fidelity="hybrid"`` is held to the weaker *metric* contract it
advertises: goodput within 2% of the oracle, identical retransmit/RTO
counters, and it must actually have cruised (``sim.warps > 0``) while
processing far fewer events.
"""

import random

import pytest

from repro.core.simplified import tcplp_params
from repro.core.socket_api import TcpStack
from repro.experiments.topology import build_chain, build_grid_mesh, build_pair
from repro.experiments.workload import BulkTransfer, FlowSet, FlowSpec
from repro.faults import FaultInjector, FaultSchedule
from repro.sim.checkpoint import CheckpointManager, TraceHook
from repro.sim.engine import Simulator
from repro.sim.fastcore import FastSimulator
from repro.verify.probes import probe_kernel

CHAOS_SPEC = {
    "name": "equivalence-chaos",
    "faults": [
        {"kind": "bursty_loss", "p_good_bad": 0.05, "p_bad_good": 0.3},
        {"kind": "frame_corruption", "rate": 0.01},
        {"kind": "link_flap", "a": 0, "b": 1, "at": 6.0, "down_for": 1.0},
        {"kind": "node_reboot", "node": 1, "at": 10.0, "outage": 2.0},
    ],
}


def _stack(net, nid, params=None):
    node = net.nodes[nid]
    return TcpStack(net.sim, node.ipv6, nid, cpu=node.radio.cpu,
                    sleepy=node.sleepy)


def _trace(sim):
    entries = []
    sim.on_event = lambda ev: entries.append(
        (ev.time, ev.seq, getattr(ev.fn, "__qualname__", repr(ev.fn))))
    return entries


def _chain_run(accel: bool, seed: int):
    """3-hop hidden-terminal bulk transfer, fully traced."""
    net = build_chain(3, seed=seed, accel=accel)
    for n in net.nodes.values():
        n.mac.params.retry_delay = 0.04
    params = tcplp_params(window_segments=4)
    trace = _trace(net.sim)
    xfer = BulkTransfer(net.sim, _stack(net, 3), _stack(net, 0),
                        receiver_id=0, params=params, receiver_params=params)
    res = xfer.measure(5.0, 10.0)
    return trace, round(res.goodput_kbps, 3), net.medium.frames_delivered


def _mesh_run(accel: bool, seed: int):
    """A small router mesh with staggered concurrent flows, traced."""
    net = build_grid_mesh(4, 4, seed=seed, accel=accel)
    params = tcplp_params(window_segments=2)
    specs = [FlowSpec(src=3, dst=0, start=0.0),
             FlowSpec(src=15, dst=12, start=0.25),
             FlowSpec(src=12, dst=0, start=0.5),
             FlowSpec(src=7, dst=4, start=0.75)]
    trace = _trace(net.sim)
    flows = FlowSet(net, specs, params=params)
    res = flows.measure(warmup=4.0, duration=6.0)
    return (trace, round(res.aggregate_goodput_kbps, 3),
            net.medium.frames_delivered, res.flows_connected)


def _chaos_run(accel: bool, seed: int):
    """2-hop chain under compound faults (flap + reboot + loss), traced."""
    net = build_chain(2, seed=seed, with_cloud=False, accel=accel)
    for n in net.nodes.values():
        n.mac.params.retry_delay = 0.04
    injector = FaultInjector(net, FaultSchedule.from_dict(CHAOS_SPEC)).arm()
    params = tcplp_params(window_segments=4)
    trace = _trace(net.sim)
    xfer = BulkTransfer(net.sim, _stack(net, 2), _stack(net, 0),
                        receiver_id=0, params=params, receiver_params=params)
    res = xfer.measure(5.0, 10.0)
    return (trace, round(res.goodput_kbps, 3),
            net.medium.frames_delivered, len(injector.events))


# ======================================================================
# byte-identical traces, per scenario family, across seeds
# ======================================================================
@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
def test_chain_trace_identical(seed):
    oracle = _chain_run(accel=False, seed=seed)
    fast = _chain_run(accel=True, seed=seed)
    assert len(oracle[0]) > 5000  # the run exercised the whole stack
    assert fast == oracle


@pytest.mark.parametrize("seed", [3, 11])
def test_mesh_trace_identical(seed):
    oracle = _mesh_run(accel=False, seed=seed)
    fast = _mesh_run(accel=True, seed=seed)
    assert oracle[3] > 0  # flows actually connected
    assert len(oracle[0]) > 5000
    assert fast == oracle


@pytest.mark.parametrize("seed", [7, 23])
def test_chaos_trace_identical(seed):
    oracle = _chaos_run(accel=False, seed=seed)
    fast = _chaos_run(accel=True, seed=seed)
    assert oracle[3] > 0  # faults actually fired
    assert len(oracle[0]) > 5000
    assert fast == oracle


# ======================================================================
# kernel construction and dispatch
# ======================================================================
def test_accel_flag_dispatches_to_fast_simulator():
    assert type(Simulator()) is Simulator
    fast = Simulator(accel=True)
    assert type(fast) is FastSimulator
    assert fast.accel is True and fast.fidelity == "full"
    assert fast.hybrid is None


def test_hybrid_fidelity_implies_fast_kernel_and_controller():
    sim = Simulator(fidelity="hybrid")
    assert type(sim) is FastSimulator
    assert sim.hybrid is not None
    from repro.sim.engine import SimulationError

    with pytest.raises(SimulationError, match="fidelity"):
        Simulator(fidelity="approximate")


def test_deepcopy_preserves_kernel_class():
    import copy

    fast = Simulator(accel=True)
    fast.schedule(1.0, fast.stop)
    clone = copy.deepcopy(fast)
    assert type(clone) is FastSimulator
    assert clone.pending_count() == 1


# ======================================================================
# schedule_unref semantics under both kernels
# ======================================================================
@pytest.mark.parametrize("accel", [False, True], ids=["oracle", "accel"])
def test_schedule_unref_semantics(accel):
    sim = Simulator(accel=accel)
    fired = []
    assert sim.schedule_unref(2.0, fired.append, "slim") is None
    ev = sim.schedule(1.0, fired.append, "event")
    assert sim.pending_count() == 2
    assert sim.peek_time() == pytest.approx(1.0)
    fns = [e.fn for e in sim.pending_events()]
    assert fired.append in fns
    sim.run()
    assert fired == ["event", "slim"]
    assert ev.fired
    assert sim.events_processed == 2
    assert sim.pending_count() == 0


@pytest.mark.parametrize("accel", [False, True], ids=["oracle", "accel"])
def test_schedule_unref_rejects_negative_delay(accel):
    from repro.sim.engine import SimulationError

    sim = Simulator(accel=accel)
    with pytest.raises(SimulationError):
        sim.schedule_unref(-0.1, lambda: None)


@pytest.mark.parametrize("accel", [False, True], ids=["oracle", "accel"])
def test_warp_shifts_both_entry_shapes(accel):
    from repro.sim.engine import SimulationError

    sim = Simulator(accel=accel)
    fired = []
    sim.schedule_unref(2.0, lambda: fired.append(("slim", sim.now)))
    sim.schedule(3.0, lambda: fired.append(("event", sim.now)))
    sim.warp(10.0)
    assert sim.now == pytest.approx(10.0)
    assert sim.time_warped == pytest.approx(10.0)
    assert sim.warps == 1
    sim.run()
    assert fired == [("slim", 12.0), ("event", 13.0)]
    with pytest.raises(SimulationError):
        sim.warp(0.0)


# ======================================================================
# invariant probes and checkpointing see through the fast kernel
# ======================================================================
def test_probe_kernel_clean_on_accel_mid_run():
    sim = Simulator(accel=True)
    for i in range(50):
        sim.schedule_unref(0.1 * i + 5.0, lambda: None)
    events = [sim.schedule(0.1 * i + 5.0, lambda: None) for i in range(50)]
    for ev in events[::3]:
        ev.cancel()
    sim.schedule_periodic(1.0, lambda: None)
    sim.run(until=3.0)
    assert probe_kernel(sim, 0.0) == []
    assert sim.pending_count() > 0


def test_checkpoint_resume_byte_identical_on_accel():
    net = build_chain(2, seed=11, with_cloud=False, accel=True)
    for n in net.nodes.values():
        n.mac.params.retry_delay = 0.04
    params = tcplp_params(window_segments=4)
    xfer = BulkTransfer(net.sim, _stack(net, 2), _stack(net, 0),
                        receiver_id=0, params=params, receiver_params=params)
    hook = TraceHook().attach(net.sim)
    manager = CheckpointManager(
        net.sim, roots={"xfer": xfer}, interval=5.0).start()
    net.sim.run(until=12.0)
    cp = manager.latest()
    assert cp is not None and cp.time == pytest.approx(10.0)
    reference = hook.suffix_after(cp)
    assert len(reference) > 100
    sim2, _roots = cp.restore()
    assert type(sim2) is FastSimulator  # the kernel tier survives restore
    hook2 = TraceHook().attach(sim2)
    sim2.run(until=12.0)
    assert hook2.entries == reference


# ======================================================================
# the inlined CSMA backoff draw is replica-exact
# ======================================================================
def test_backoff_draw_matches_randint():
    """The MAC's inlined rejection loop must consume getrandbits exactly
    like CPython's Random.randint(0, 2**be - 1) so seeded traces stay
    byte-identical (pinned by the comment in MacLayer._backoff)."""
    for seed in range(20):
        for be in (0, 1, 3, 5, 8):
            ref_rng = random.Random(seed)
            inl_rng = random.Random(seed)
            for _ in range(50):
                expected = ref_rng.randint(0, (1 << be) - 1)
                n = 1 << be
                k = n.bit_length()
                getrandbits = inl_rng.getrandbits
                r = getrandbits(k)
                while r >= n:
                    r = getrandbits(k)
                assert r == expected
            # and the two streams remain aligned afterwards
            assert ref_rng.random() == inl_rng.random()


# ======================================================================
# hybrid fidelity: metric equivalence on steady bulk transfer
# ======================================================================
def _bulk_run(fidelity: str):
    net = build_pair(seed=1, fidelity=fidelity)
    params = tcplp_params()
    xfer = BulkTransfer(net.sim, _stack(net, 1), _stack(net, 0),
                        receiver_id=0, params=params, receiver_params=params)
    res = xfer.measure(10.0, 45.0)
    counters = xfer.connection.trace.counters
    retx = tuple(counters.get(k) for k in (
        "tcp.retransmits", "tcp.rto_events", "tcp.fast_retransmits"))
    return net.sim, res.goodput_kbps, retx


def test_hybrid_metric_equivalence_on_bulk():
    sim_o, goodput_o, retx_o = _bulk_run("full")
    sim_h, goodput_h, retx_h = _bulk_run("hybrid")
    assert sim_o.warps == 0
    # it actually cruised, and skipped a large share of the event work
    assert sim_h.warps > 0
    assert sim_h.hybrid.cruises == sim_h.warps
    assert sim_h.hybrid.credited_bytes > 0
    assert sim_h.events_processed < sim_o.events_processed / 3
    # metric contract: goodput within 2%, loss/retransmit counters equal
    assert goodput_h == pytest.approx(goodput_o, rel=0.02)
    assert retx_h == retx_o


def test_hybrid_never_cruises_while_faults_armed():
    net = build_chain(2, seed=7, with_cloud=False, fidelity="hybrid")
    for n in net.nodes.values():
        n.mac.params.retry_delay = 0.04
    FaultInjector(net, FaultSchedule.from_dict(CHAOS_SPEC)).arm()
    params = tcplp_params(window_segments=4)
    xfer = BulkTransfer(net.sim, _stack(net, 2), _stack(net, 0),
                        receiver_id=0, params=params, receiver_params=params)
    xfer.measure(5.0, 10.0)
    assert net.sim.warps == 0  # the injector's veto held
