"""End-to-end TCP tests over the simulated LLN."""

from repro.core.params import linux_like_params
from repro.core.simplified import tcplp_params, uip_params
from repro.core.socket_api import TcpStack
from repro.experiments.topology import CLOUD_ID, build_chain, build_pair
from repro.experiments.workload import BulkTransfer
from repro.phy.medium import UniformLoss


def make_stacks(net, a=0, b=1):
    sa = TcpStack(net.sim, net.nodes[a].ipv6, a, cpu=net.nodes[a].radio.cpu)
    sb = TcpStack(net.sim, net.nodes[b].ipv6, b, cpu=net.nodes[b].radio.cpu)
    return sa, sb


def test_three_way_handshake_and_data():
    net = build_pair(seed=1)
    sa, sb = make_stacks(net)
    got = []
    accepted = []

    def on_accept(conn):
        accepted.append(conn)
        conn.on_data = got.append

    sb.listen(8000, on_accept)
    conn = sa.connect(1, 8000, params=tcplp_params())
    connected = []
    conn.on_connect = lambda: connected.append(True)
    net.sim.run(until=2.0)
    assert connected == [True]
    assert len(accepted) == 1
    conn.send(b"hello lln tcp")
    net.sim.run(until=4.0)
    assert b"".join(got) == b"hello lln tcp"


def test_bulk_transfer_integrity_and_goodput():
    net = build_pair(seed=2)
    sa, sb = make_stacks(net)
    xfer = BulkTransfer(net.sim, sa, sb, receiver_id=1, params=tcplp_params(),
                        receiver_params=tcplp_params())
    result = xfer.measure(warmup=5.0, duration=30.0)
    assert xfer.errors == []
    # §6.3: node-to-node goodput around 63-75 kb/s; accept a broad band
    assert 40 < result.goodput_kbps < 85
    assert result.rto_events == 0


def test_bulk_transfer_to_cloud_via_border_router():
    net = build_chain(1, seed=3)
    node_stack = TcpStack(net.sim, net.nodes[1].ipv6, 1,
                          cpu=net.nodes[1].radio.cpu)
    cloud_stack = TcpStack(net.sim, net.cloud, CLOUD_ID,
                           default_params=linux_like_params())
    xfer = BulkTransfer(
        net.sim, node_stack, cloud_stack, receiver_id=CLOUD_ID,
        params=tcplp_params(to_cloud=True), dst_is_cloud=True,
    )
    result = xfer.measure(warmup=5.0, duration=30.0)
    assert xfer.errors == []
    assert 40 < result.goodput_kbps < 85


def test_downlink_cloud_to_node():
    net = build_chain(1, seed=4)
    node_stack = TcpStack(net.sim, net.nodes[1].ipv6, 1,
                          cpu=net.nodes[1].radio.cpu)
    cloud_stack = TcpStack(net.sim, net.cloud, CLOUD_ID,
                           default_params=linux_like_params())
    xfer = BulkTransfer(
        net.sim, cloud_stack, node_stack, receiver_id=1,
        params=linux_like_params(), receiver_params=tcplp_params(to_cloud=True),
    )
    result = xfer.measure(warmup=5.0, duration=30.0)
    assert xfer.errors == []
    # downlink is a bit slower (paper Fig. 4) but same order
    assert 30 < result.goodput_kbps < 85


def test_multihop_goodput_declines_with_hops():
    results = {}
    for hops in (1, 3):
        net = build_chain(hops, seed=5)
        for n in net.nodes.values():
            n.mac.params.retry_delay = 0.04
        src = net.nodes[hops]
        stack_src = TcpStack(net.sim, src.ipv6, hops, cpu=src.radio.cpu)
        stack_dst = TcpStack(net.sim, net.nodes[0].ipv6, 0)
        xfer = BulkTransfer(net.sim, stack_src, stack_dst, receiver_id=0,
                            params=tcplp_params(), receiver_params=tcplp_params())
        results[hops] = xfer.measure(warmup=5.0, duration=40.0).goodput_kbps
    # §7.2: three hops should run at very roughly 1/3 of one hop
    assert results[3] < 0.55 * results[1]
    assert results[3] > 5.0


def test_retransmission_recovers_from_loss():
    net = build_pair(seed=6)
    # 5% frame loss: link retries mask most, TCP catches the rest
    net.medium.loss_models.append(UniformLoss(0.05, net.rng))
    sa, sb = make_stacks(net)
    xfer = BulkTransfer(net.sim, sa, sb, receiver_id=1, params=tcplp_params(),
                        receiver_params=tcplp_params())
    result = xfer.measure(warmup=5.0, duration=30.0)
    assert xfer.errors == []
    assert result.bytes_delivered > 0
    assert result.goodput_kbps > 30


def test_uip_stop_and_wait_is_much_slower_than_tcplp():
    """Table 7's qualitative claim: windowed full-scale TCP beats
    single-segment stop-and-wait by a wide margin on the same link."""
    def run(params):
        net = build_pair(seed=7)
        sa, sb = make_stacks(net)
        xfer = BulkTransfer(net.sim, sa, sb, receiver_id=1,
                            params=params, receiver_params=params)
        return xfer.measure(warmup=5.0, duration=30.0).goodput_kbps

    uip = run(uip_params(mss_frames=1))
    tcplp = run(tcplp_params())
    # On an identical always-on link the win is pipelining + MSS
    # amortisation (~1.6x); Table 7's 5-40x additionally reflects the
    # baselines' duty-cycled MACs and slower platforms, reproduced in
    # benchmarks/test_table7_stacks.py.
    assert tcplp > 1.5 * uip


def test_graceful_close_both_directions():
    net = build_pair(seed=8)
    sa, sb = make_stacks(net)
    server_conns = []
    sb.listen(8000, lambda c: server_conns.append(c))
    conn = sa.connect(1, 8000, params=tcplp_params())
    net.sim.run(until=2.0)
    server = server_conns[0]
    closed = []
    server.on_peer_close = lambda: (closed.append("peer"), server.close())
    conn.on_close = lambda: closed.append("self")
    conn.send(b"bye")
    net.sim.run(until=3.0)
    conn.close()
    net.sim.run(until=20.0)
    from repro.core.connection import TcpState
    assert "peer" in closed
    assert conn.state in (TcpState.TIME_WAIT, TcpState.CLOSED)
    assert server.state is TcpState.CLOSED


def test_rst_on_connect_to_closed_port():
    net = build_pair(seed=9)
    sa, sb = make_stacks(net)
    errors = []
    conn = sa.connect(1, 9999, params=tcplp_params())
    conn.on_error = errors.append
    net.sim.run(until=5.0)
    assert errors == ["connection refused"]


def test_flow_control_zero_window_and_reopen():
    net = build_pair(seed=10)
    sa, sb = make_stacks(net)
    server_conns = []
    # receiver app does NOT read: window must close
    params = tcplp_params()
    sb.listen(8000, lambda c: server_conns.append(c), params=params)
    conn = sa.connect(1, 8000, params=params)
    net.sim.run(until=2.0)
    # push more than the receive buffer
    total = params.recv_buffer + 500
    sent = 0
    payload = b"z" * 256

    def fill():
        nonlocal sent
        while sent < total and conn.send_buf.free > 0:
            n = conn.send(payload[: min(256, total - sent)])
            sent += n
            if n == 0:
                break

    conn.on_send_space = fill
    fill()
    net.sim.run(until=30.0)
    server = server_conns[0]
    assert server.recv_buf.available == params.recv_buffer  # buffer full
    assert conn.snd_wnd == 0
    # now the app reads; the window update lets the rest flow
    drained = server.recv()
    assert len(drained) == params.recv_buffer
    net.sim.run(until=90.0)
    assert server.recv_buf.available + len(drained) >= total - conn.send_buf.used


def test_fast_retransmit_preferred_over_timeout():
    """With a 4-segment window, a single dropped segment should be
    repaired by fast retransmit (3 dupacks), not an RTO (§7.3)."""
    net = build_pair(seed=11)

    from repro.lowpan.frag import Fragment
    from repro.mac.frame import Frame

    class KillOneDatagram:
        """Drop every frame copy of one mid-flow datagram so link
        retries cannot mask the loss (a true TCP-segment loss)."""

        def __init__(self, nth_datagram):
            self.n = nth_datagram
            self.target = None
            self.seen = set()

        def __call__(self, frame, s, r):
            payload = frame.payload if isinstance(frame, Frame) else None
            if not isinstance(payload, Fragment) or s != 0:
                return False
            key = (payload.origin, payload.tag)
            if key not in self.seen:
                self.seen.add(key)
                if len(self.seen) == self.n:
                    self.target = key
            return key == self.target

    net.medium.frame_filters.append(KillOneDatagram(30))
    sa, sb = make_stacks(net)
    xfer = BulkTransfer(net.sim, sa, sb, receiver_id=1, params=tcplp_params(),
                        receiver_params=tcplp_params())
    result = xfer.measure(warmup=10.0, duration=10.0)
    counters = xfer.connection.trace.counters
    assert counters.get("tcp.fast_retransmits") >= 1
    assert counters.get("tcp.rto_events") == 0
