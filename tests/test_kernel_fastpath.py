"""Simulation-kernel fast-path regressions.

The kernel optimisations (cached adjacency in the medium, tombstone
compaction and periodic re-arming in the scheduler) must be invisible
to the simulation: same seed, byte-identical event trace.  These tests
pin that contract down, plus the cache-invalidation and compaction
behaviour itself.
"""

import pytest

from repro.core.simplified import tcplp_params
from repro.core.socket_api import TcpStack
from repro.experiments.topology import build_chain
from repro.experiments.workload import BulkTransfer
from repro.mac.frame import Frame, FrameKind
from repro.phy.medium import Medium
from repro.phy.radio import Radio
from repro.sim.engine import SimulationError, Simulator
from repro.sim.rng import RngStreams
from repro.sim.timers import PeriodicTimer


# ----------------------------------------------------------------------
# determinism: the optimised kernel replays the exact same event trace
# ----------------------------------------------------------------------
def _traced_chain_run(use_cache: bool):
    """Run a short 3-hop TCP transfer, recording every dispatched event."""
    net = build_chain(3, seed=1)
    net.medium.use_cache = use_cache
    for n in net.nodes.values():
        n.mac.params.retry_delay = 0.04
    params = tcplp_params(window_segments=4)

    def stack(nid):
        node = net.nodes[nid]
        return TcpStack(net.sim, node.ipv6, nid, cpu=node.radio.cpu,
                        sleepy=node.sleepy)

    trace = []
    net.sim.on_event = lambda ev: trace.append(
        (ev.time, ev.seq, getattr(ev.fn, "__qualname__", repr(ev.fn)))
    )
    src, dst = stack(3), stack(0)
    xfer = BulkTransfer(net.sim, src, dst, receiver_id=0, params=params,
                        receiver_params=params)
    res = xfer.measure(5.0, 10.0)
    return trace, res.goodput_kbps, net.medium.frames_delivered


def test_same_seed_reproduces_identical_event_trace():
    trace_a, goodput_a, delivered_a = _traced_chain_run(use_cache=True)
    trace_b, goodput_b, delivered_b = _traced_chain_run(use_cache=True)
    assert len(trace_a) > 5000  # the run actually exercised the stack
    assert trace_a == trace_b
    assert (goodput_a, delivered_a) == (goodput_b, delivered_b)


def test_adjacency_cache_does_not_change_the_simulation():
    """Cached and geometric connectivity paths must be byte-identical:
    same event times, same dispatch order, same RNG draw order."""
    cached, goodput_c, delivered_c = _traced_chain_run(use_cache=True)
    uncached, goodput_u, delivered_u = _traced_chain_run(use_cache=False)
    assert cached == uncached
    assert (goodput_c, delivered_c) == (goodput_u, delivered_u)


# ----------------------------------------------------------------------
# adjacency cache invalidation
# ----------------------------------------------------------------------
def _cache_net():
    sim = Simulator()
    medium = Medium(sim, rng=RngStreams(1), comm_range=6.0)
    radios = [Radio(sim, medium, node_id=i, position=pos)
              for i, pos in enumerate([(0, 0), (5, 0), (10, 0)])]
    return sim, medium, radios


def _send(sim, radios, src, dst):
    f = Frame(kind=FrameKind.DATA, src=src, dst=dst, payload=b"x",
              payload_bytes=40)
    radios[src].transmit(f, 63, lambda: None)
    sim.run()


def test_block_link_invalidates_cache_after_traffic():
    sim, medium, radios = _cache_net()
    got = []
    radios[1].on_frame = lambda f, s: got.append(s)
    _send(sim, radios, 0, 1)
    assert got == [0]  # cache built and used
    medium.block_link(0, 1)
    _send(sim, radios, 0, 1)
    assert got == [0]  # no second delivery: the cache saw the block
    assert not medium.in_range(0, 1)


def test_force_link_invalidates_cache_after_traffic():
    sim, medium, radios = _cache_net()
    got = []
    radios[2].on_frame = lambda f, s: got.append(s)
    _send(sim, radios, 0, 2)
    assert got == []  # out of range
    medium.force_link(0, 2)
    _send(sim, radios, 0, 2)
    assert got == [0]
    assert medium.neighbors(0) == [1, 2]


def test_direct_link_set_mutation_invalidates_cache():
    """Chaos tests mutate _blocked_links directly (e.g. scheduling
    its .clear to heal a partition); the cache must notice."""
    sim, medium, radios = _cache_net()
    medium.block_link(0, 1)
    assert not medium.in_range(0, 1)
    medium._blocked_links.clear()
    assert medium.in_range(0, 1)
    assert medium.cache_rebuilds >= 2


# ----------------------------------------------------------------------
# scheduler: tombstone accounting and compaction
# ----------------------------------------------------------------------
def test_cancel_heavy_load_triggers_compaction():
    sim = Simulator()
    events = [sim.schedule(10.0, lambda: None) for _ in range(500)]
    keeper = sim.schedule(1.0, lambda: None)
    for ev in events:
        ev.cancel()
    # >50% of the heap was dead, so it was compacted in place
    assert sim.compactions >= 1
    assert sim.cancelled_count < 64
    assert len(sim._queue) <= 64 + 1
    assert sim.pending_count() == 1
    sim.run()
    assert keeper.fired
    assert sim.events_processed == 1


@pytest.mark.parametrize("accel", [False, True], ids=["oracle", "accel"])
def test_cancel_heavy_workload_keeps_heap_bounded(accel):
    """The TCP rexmit-timer pattern — every tick re-arms a batch of
    timers and cancels the previous batch — must not grow the heap, and
    the tombstone accounting must agree with the heap afterwards under
    both kernels (the accelerated one mixes slim handle-free entries
    into the same heap)."""
    sim = Simulator(accel=accel)
    live = []

    def tick():
        for ev in live:
            ev.cancel()
        live.clear()
        live.extend(sim.schedule(5.0, lambda: None) for _ in range(40))
        # handle-free churn rides along (slim 4-tuples on the fast kernel)
        sim.schedule_unref(0.005, lambda: None)

    sim.schedule_periodic(0.01, tick)
    sim.run(until=2.0)
    # ~200 ticks x 40 cancels: without compaction the heap would hold
    # thousands of dead entries; with it, live batch + tombstone
    # allowance + the periodic tick is the ceiling
    assert sim.compactions > 0
    assert len(sim._queue) <= 40 + 64 + 1
    pend = sim.pending_events()
    assert sim.pending_count() == len(pend) == 40 + 1
    tombstones = sum(
        1 for e in sim._queue if len(e) == 3 and e[2].cancelled)
    assert tombstones == sim.cancelled_count


@pytest.mark.parametrize("accel", [False, True], ids=["oracle", "accel"])
def test_compaction_preserves_pending_dispatch_order(accel):
    """Compacting mid-flight must not reorder or drop survivors."""
    sim = Simulator(accel=accel)
    fired = []
    keep = [sim.schedule(1.0 + 0.1 * i, fired.append, i) for i in range(5)]
    doomed = [sim.schedule(10.0, lambda: fired.append("dead"))
              for _ in range(300)]
    sim.schedule_unref(1.25, fired.append, "slim")
    for ev in doomed:
        ev.cancel()
    assert sim.compactions >= 1 and sim.cancelled_count < 64
    assert sim.pending_count() == 6
    sim.run()
    assert fired == [0, 1, 2, "slim", 3, 4]
    assert all(ev.fired for ev in keep)


def test_double_cancel_counts_once():
    sim = Simulator()
    ev = sim.schedule(1.0, lambda: None)
    ev.cancel()
    ev.cancel()
    assert sim.cancelled_count == 1
    sim.run()
    assert sim.cancelled_count == 0
    assert sim.events_processed == 0


# ----------------------------------------------------------------------
# periodic events
# ----------------------------------------------------------------------
def test_schedule_periodic_fires_every_interval():
    sim = Simulator()
    fires = []
    ev = sim.schedule_periodic(1.0, lambda: fires.append(sim.now))
    sim.run(until=5.5)
    assert fires == [1.0, 2.0, 3.0, 4.0, 5.0]
    ev.cancel()
    sim.run(until=10.0)
    assert len(fires) == 5


def test_schedule_periodic_rejects_bad_interval():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule_periodic(0.0, lambda: None)


def test_periodic_timer_ensure_keeps_phase():
    sim = Simulator()
    fires = []
    timer = PeriodicTimer(sim, lambda: fires.append(sim.now), name="t")
    timer.start(1.0)
    sim.run(until=2.5)
    assert fires == [1.0, 2.0]
    timer.ensure(1.0)  # same interval: must NOT reset the phase
    sim.run(until=3.5)
    assert fires == [1.0, 2.0, 3.0]
    timer.ensure(0.5)  # interval change: re-arms from now (t=3.5)
    sim.run(until=4.6)
    assert fires == [1.0, 2.0, 3.0, 4.0, 4.5]
    timer.stop()
    assert not timer.armed
    sim.run(until=10.0)
    assert len(fires) == 5
