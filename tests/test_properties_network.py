"""Property-based tests for network-layer components."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.ipv6 import ECN_CE, ECN_ECT0, ECN_NOT_ECT, Ipv6Packet, PROTO_TCP
from repro.net.queues import DropTailQueue, RedParams, RedQueue
from repro.mac.trickle import TrickleTimer
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams


def pkt(ecn=ECN_NOT_ECT):
    return Ipv6Packet(src=1, dst=2, next_header=PROTO_TCP, payload=None,
                      payload_bytes=64, ecn=ecn)


class TestRedProperties:
    @given(
        min_th=st.floats(0.5, 5.0),
        spread=st.floats(0.5, 5.0),
        max_p=st.floats(0.01, 1.0),
        wq=st.floats(0.01, 1.0),
        capacity=st.integers(1, 20),
        arrivals=st.integers(0, 200),
        seed=st.integers(0, 999),
    )
    @settings(max_examples=60)
    def test_capacity_never_exceeded(self, min_th, spread, max_p, wq,
                                     capacity, arrivals, seed):
        q = RedQueue(RedParams(min_th=min_th, max_th=min_th + spread,
                               max_p=max_p, wq=wq, capacity=capacity),
                     RngStreams(seed))
        for _ in range(arrivals):
            q.enqueue(pkt(ECN_ECT0))
        assert len(q) <= capacity

    @given(seed=st.integers(0, 999), n=st.integers(1, 100))
    @settings(max_examples=30)
    def test_not_ect_packets_never_get_marked(self, seed, n):
        q = RedQueue(RedParams(min_th=0.5, max_th=2.0, max_p=1.0, wq=1.0,
                               capacity=50), RngStreams(seed))
        for _ in range(n):
            q.enqueue(pkt(ECN_NOT_ECT))
        # drain: nothing may carry CE (only drops are allowed)
        while True:
            p = q.dequeue()
            if p is None:
                break
            assert p.ecn != ECN_CE

    @given(seed=st.integers(0, 999), n=st.integers(1, 100))
    @settings(max_examples=30)
    def test_accounting_conserves_packets(self, seed, n):
        q = RedQueue(RedParams(capacity=8), RngStreams(seed))
        outcomes = [q.enqueue(pkt(ECN_ECT0)) for _ in range(n)]
        kept = outcomes.count("enqueue") + outcomes.count("mark")
        assert kept == len(q)
        assert outcomes.count("drop") == q.drops == n - kept


class TestDropTailProperties:
    @given(st.integers(1, 30), st.integers(0, 100))
    def test_fifo_conservation(self, capacity, n):
        q = DropTailQueue(capacity)
        packets = [pkt() for _ in range(n)]
        accepted = [p for p in packets if q.enqueue(p) == "enqueue"]
        drained = []
        while True:
            p = q.dequeue()
            if p is None:
                break
            drained.append(p)
        assert drained == accepted
        assert len(accepted) == min(n, capacity)


class TestTrickleProperties:
    @given(
        imin=st.floats(0.01, 2.0),
        doublings=st.integers(0, 8),
        horizon=st.floats(1.0, 50.0),
    )
    @settings(max_examples=40)
    def test_interval_always_within_bounds(self, imin, doublings, horizon):
        imax = imin * (2 ** doublings)
        sim = Simulator()
        seen = []
        t = TrickleTimer(sim, imin=imin, imax=imax,
                         on_interval=seen.append)
        t.start()
        sim.run(until=horizon)
        assert seen
        for interval in seen:
            assert imin <= interval <= imax + 1e-9

    @given(reset_at=st.floats(0.1, 30.0))
    @settings(max_examples=30)
    def test_reset_always_returns_to_imin(self, reset_at):
        sim = Simulator()
        seen = []
        t = TrickleTimer(sim, imin=0.5, imax=16.0, on_interval=seen.append)
        t.start()
        sim.schedule(reset_at, t.hear_inconsistent)
        sim.run(until=reset_at + 0.01)
        if seen[-1] != 0.5:
            # reset only re-begins the interval when it had grown
            assert sim.now < 1.0
