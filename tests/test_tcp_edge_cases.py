"""TCP edge cases: persist, ECN, challenge ACKs, feature flags, timers."""

import pytest

from repro.core.connection import TcpState
from repro.core.segment import FLAG_ACK, FLAG_RST, FLAG_SYN, Segment
from repro.core.simplified import (
    FEATURE_MATRIX,
    blip_params,
    gnrc_params,
    tcplp_params,
    uip_params,
)
from repro.core.socket_api import TcpStack
from repro.experiments.topology import build_pair


def make_conn_pair(seed=0, params_a=None, params_b=None):
    net = build_pair(seed=seed)
    sa = TcpStack(net.sim, net.nodes[0].ipv6, 0)
    sb = TcpStack(net.sim, net.nodes[1].ipv6, 1)
    server_conns = []
    sb.listen(8000, server_conns.append, params=params_b or tcplp_params())
    conn = sa.connect(1, 8000, params=params_a or tcplp_params())
    net.sim.run(until=2.0)
    assert server_conns, "handshake failed"
    return net, conn, server_conns[0]


class TestZeroWindow:
    def test_persist_probes_fire_on_zero_window(self):
        params = tcplp_params()
        net, conn, server = make_conn_pair(params_a=params, params_b=params)
        # server app never reads: fill its window completely
        total = params.recv_buffer + 300
        sent = [0]

        def fill():
            while sent[0] < total and conn.send_buf.free > 0:
                n = conn.send(b"q" * min(128, total - sent[0]))
                if n == 0:
                    return
                sent[0] += n

        conn.on_send_space = fill
        fill()
        net.sim.run(until=40.0)
        assert conn.snd_wnd == 0
        assert conn.trace.counters.get("tcp.zero_window_probes") >= 1
        # now the app reads; everything eventually arrives
        server.recv()
        net.sim.run(until=120.0)
        assert server.recv_buf.available + 0 >= 0  # no crash
        delivered = total - conn.send_buf.used - (total - sent[0])
        assert conn.snd_wnd > 0

    def test_window_update_reopens_flow(self):
        params = tcplp_params()
        net, conn, server = make_conn_pair(params_a=params, params_b=params)
        conn.send(b"z" * params.recv_buffer)
        net.sim.run(until=20.0)
        assert server.recv_buf.available == params.recv_buffer
        got = server.recv(100)
        assert len(got) == 100
        # reading 100 < MSS bytes should NOT trigger an update yet;
        # reading a full MSS worth must
        server.recv()
        net.sim.run(until=25.0)
        assert conn.snd_wnd >= params.mss


class TestChallengeAcks:
    def test_blind_rst_is_challenged(self):
        net, conn, server = make_conn_pair()
        # RST with an in-window but non-exact sequence number
        evil = Segment(src_port=server.local_port, dst_port=conn.local_port,
                       seq=(conn.rcv_nxt + 5) % (1 << 32), flags=FLAG_RST)
        conn.on_segment(evil, type("P", (), {"src": 1, "ecn": 0})())
        assert conn.state is TcpState.ESTABLISHED
        assert conn.trace.counters.get("tcp.challenge_acks") >= 1

    def test_exact_rst_resets(self):
        net, conn, server = make_conn_pair()
        errors = []
        conn.on_error = errors.append
        rst = Segment(src_port=server.local_port, dst_port=conn.local_port,
                      seq=conn.rcv_nxt, flags=FLAG_RST)
        conn.on_segment(rst, type("P", (), {"src": 1, "ecn": 0})())
        assert conn.state is TcpState.CLOSED
        assert errors == ["connection reset by peer"]

    def test_in_window_syn_is_challenged(self):
        net, conn, server = make_conn_pair()
        syn = Segment(src_port=server.local_port, dst_port=conn.local_port,
                      seq=conn.rcv_nxt, flags=FLAG_SYN | FLAG_ACK,
                      ack=conn.snd_nxt)
        conn.on_segment(syn, type("P", (), {"src": 1, "ecn": 0})())
        assert conn.state is TcpState.ESTABLISHED
        assert conn.trace.counters.get("tcp.challenge_acks") >= 1


class TestEcn:
    def test_ecn_negotiated_and_responds_to_ce(self):
        params = tcplp_params(ecn=True)
        net, conn, server = make_conn_pair(params_a=params, params_b=params)
        assert conn.ecn_enabled and server.ecn_enabled
        # make every mesh link mark CE on data packets (fake congestion)
        original = net.nodes[0].ipv6.route_out

        def marking(packet):
            from repro.net.ipv6 import ECN_CE, ECN_ECT0
            if packet.ecn == ECN_ECT0:
                packet.ecn = ECN_CE
            original(packet)

        net.nodes[0].ipv6.route_out = marking
        got = []
        server.on_data = got.append
        payload = b"e" * 1500  # fits the 4-segment send buffer
        accepted = conn.send(payload)
        assert accepted == len(payload)
        net.sim.run(until=30.0)
        assert b"".join(got) == payload  # data still flows
        assert conn.trace.counters.get("tcp.ecn_responses") >= 1

    def test_no_ecn_without_negotiation(self):
        net, conn, server = make_conn_pair()  # default: ecn off
        assert not conn.ecn_enabled


class TestSimplifiedStacks:
    def test_uip_profile_matches_table1(self):
        p = uip_params()
        assert not p.use_timestamps and not p.use_sack
        assert not p.ooo_reassembly and not p.delayed_ack
        assert p.rtt_estimation
        assert p.send_buffer == p.mss  # single segment in flight

    def test_blip_has_fixed_rto(self):
        p = blip_params()
        assert not p.rtt_estimation
        assert p.rto_min == p.rto_initial == 3.0

    def test_gnrc_has_cc_and_reassembly(self):
        p = gnrc_params()
        assert p.congestion_control and p.ooo_reassembly
        assert not p.use_sack and not p.use_timestamps

    def test_feature_matrix_shape(self):
        assert set(FEATURE_MATRIX) == {"uIP", "BLIP", "GNRC", "TCPlp"}
        tcplp = FEATURE_MATRIX["TCPlp"]
        assert all(tcplp[k] for k in tcplp)

    def test_ooo_disabled_drops_out_of_order_data(self):
        # uIP-like receiver: an out-of-order segment is dropped and
        # later retransmitted in order
        params_rx = uip_params(mss_frames=4)
        net, conn, server = make_conn_pair(
            params_a=tcplp_params(), params_b=params_rx
        )
        got = []
        server.on_data = got.append
        conn.send(b"ab" * 300)
        net.sim.run(until=60.0)
        assert b"".join(got) == b"ab" * 300


class TestTimeWait:
    def test_time_wait_expires_to_closed(self):
        params = tcplp_params()
        params.time_wait = 1.0
        net, conn, server = make_conn_pair(params_a=params)
        server.on_peer_close = server.close
        conn.close()
        net.sim.run(until=5.0)
        assert conn.state in (TcpState.TIME_WAIT, TcpState.CLOSED)
        net.sim.run(until=30.0)
        assert conn.state is TcpState.CLOSED


class TestStackBehaviour:
    def test_listener_close_stops_accepting(self):
        net = build_pair(seed=3)
        sa = TcpStack(net.sim, net.nodes[0].ipv6, 0)
        sb = TcpStack(net.sim, net.nodes[1].ipv6, 1)
        listener = sb.listen(8000, lambda c: None)
        listener.close()
        errors = []
        conn = sa.connect(1, 8000, params=tcplp_params())
        conn.on_error = errors.append
        net.sim.run(until=5.0)
        assert errors == ["connection refused"]

    def test_duplicate_listen_rejected(self):
        net = build_pair(seed=4)
        sb = TcpStack(net.sim, net.nodes[1].ipv6, 1)
        sb.listen(8000, lambda c: None)
        with pytest.raises(ValueError):
            sb.listen(8000, lambda c: None)

    def test_connections_cleaned_up_after_close(self):
        net, conn, server = make_conn_pair()
        stack_size_before = 1
        conn.abort()
        net.sim.run(until=5.0)
        assert conn.state is TcpState.CLOSED
        assert server.state is TcpState.CLOSED

    def test_ephemeral_ports_unique(self):
        net = build_pair(seed=5)
        sa = TcpStack(net.sim, net.nodes[0].ipv6, 0)
        sb = TcpStack(net.sim, net.nodes[1].ipv6, 1)
        sb.listen(8000, lambda c: None)
        c1 = sa.connect(1, 8000, params=tcplp_params())
        c2 = sa.connect(1, 8000, params=tcplp_params())
        assert c1.local_port != c2.local_port

    def test_syn_retransmission_then_give_up(self):
        net = build_pair(seed=6)
        net.medium.block_link(0, 1)
        sa = TcpStack(net.sim, net.nodes[0].ipv6, 0)
        params = tcplp_params()
        params.max_syn_retries = 2
        errors = []
        conn = sa.connect(1, 8000, params=params)
        conn.on_error = errors.append
        net.sim.run(until=60.0)
        assert errors == ["connection timed out (SYN)"]
        assert conn.trace.counters.get("tcp.syn_retransmits") == 2
