"""Experiment-harness integration tests (short runs, shape assertions).

The benchmarks run the full-length versions; these verify the harness
plumbing and the qualitative trends on abbreviated runs.
"""

import pytest

from repro.experiments.exp_app import run_app_study
from repro.experiments.exp_duty import (
    run_adaptive_duty_cycle,
    run_duty_cycle_point,
)
from repro.experiments.exp_fairness import run_two_flows
from repro.experiments.exp_retry_delay import (
    run_fig7a_cwnd_trace,
    run_retry_delay_point,
)
from repro.experiments.exp_table7 import TABLE7_ROWS, run_stack_context
from repro.experiments.exp_throughput import (
    run_fig4_mss_sweep,
    run_fig5_buffer_sweep,
    run_node_to_node,
    run_sec72_hops,
)


class TestThroughputExperiments:
    def test_node_to_node_in_paper_band(self):
        result = run_node_to_node(duration=30.0)
        # §6.3: 63-75 kb/s across stacks; allow simulation tolerance
        assert 55 <= result.goodput_kbps <= 85

    def test_mss_sweep_rises_then_flattens(self):
        rows = run_fig4_mss_sweep(frames_range=(2, 5), duration=25.0)
        by_frames = {r["mss_frames"]: r for r in rows}
        assert by_frames[5]["uplink_kbps"] > 1.3 * by_frames[2]["uplink_kbps"]

    def test_buffer_sweep_saturates(self):
        rows = run_fig5_buffer_sweep(window_segments=(1, 4), duration=25.0)
        w1, w4 = rows[0], rows[1]
        assert w4["goodput_kbps"] > 1.5 * w1["goodput_kbps"]
        assert w4["rtt_mean"] > w1["rtt_mean"]

    def test_hops_follow_one_half_third_law(self):
        rows = run_sec72_hops(hops_range=(1, 2, 3), duration=40.0)
        g = {r["hops"]: r["goodput_kbps"] for r in rows}
        assert g[2] == pytest.approx(g[1] / 2, rel=0.25)
        assert g[3] == pytest.approx(g[1] / 3, rel=0.30)


class TestRetryDelayExperiments:
    def test_d0_vs_d40_at_three_hops(self):
        d0 = run_retry_delay_point(3, 0.0, duration=40.0)
        d40 = run_retry_delay_point(3, 0.04, duration=40.0)
        # hidden terminals: segment loss falls sharply with d (Fig. 6b)
        assert d0["segment_loss"] > 0.03
        assert d40["segment_loss"] < 0.5 * d0["segment_loss"]
        # more frames are needed per delivered byte at d=0 (Fig. 6d)
        assert d0["frames_sent"] / max(d0["goodput_kbps"], 1) > (
            d40["frames_sent"] / max(d40["goodput_kbps"], 1)
        )
        # RTT grows with d (Fig. 6c)
        assert d40["rtt_mean"] > d0["rtt_mean"]

    def test_eq2_tracks_and_eq1_overshoots(self):
        row = run_retry_delay_point(3, 0.04, duration=40.0)
        measured = row["goodput_kbps"]
        assert row["predicted_kbps"] == pytest.approx(measured, rel=0.45)
        assert row["mathis_kbps"] > 2 * measured

    def test_cwnd_pinned_at_max_despite_loss(self):
        row = run_fig7a_cwnd_trace(duration=60.0)
        # §7.3: cwnd sits at/near its maximum almost always
        assert row["fraction_near_max"] > 0.6
        assert row["segment_loss"] > 0.02


class TestTable7:
    def test_tcplp_beats_every_baseline(self):
        tcplp = run_stack_context(TABLE7_ROWS[-1], 1, duration=25.0)
        for ctx in TABLE7_ROWS[:-1]:
            base = run_stack_context(ctx, 1, duration=25.0)
            assert tcplp > 2 * base, ctx.name

    def test_single_frame_uip_is_slowest(self):
        uip = run_stack_context(TABLE7_ROWS[0], 1, duration=25.0)
        assert uip < 8.0


class TestAppStudy:
    def test_batching_cuts_duty_cycle(self):
        nobatch = run_app_study("tcp", batching=False, duration=400.0,
                                warmup=60.0)
        batch = run_app_study("tcp", batching=True, duration=400.0,
                              warmup=60.0)
        assert batch.radio_duty_cycle < 0.7 * nobatch.radio_duty_cycle
        assert batch.cpu_duty_cycle < nobatch.cpu_duty_cycle

    def test_all_protocols_reliable_in_clean_conditions(self):
        for proto in ("tcp", "coap"):
            r = run_app_study(proto, batching=True, duration=400.0,
                              warmup=60.0)
            assert r.reliability > 0.97, proto

    def test_cocoa_collapses_at_15_percent_but_not_tcp_coap(self):
        results = {
            proto: run_app_study(proto, batching=True, injected_loss=0.15,
                                 duration=500.0, warmup=60.0)
            for proto in ("tcp", "coap", "cocoa")
        }
        assert results["coap"].reliability > 0.9
        assert results["tcp"].reliability > 0.85
        assert results["cocoa"].reliability < 0.75

    def test_unreliable_coap_loses_more_but_costs_less(self):
        rel = run_app_study("coap", batching=True, duration=400.0,
                            warmup=60.0, injected_loss=0.05)
        unrel = run_app_study("coap", batching=True, duration=400.0,
                              warmup=60.0, injected_loss=0.05,
                              confirmable=False)
        assert unrel.reliability < rel.reliability
        assert unrel.radio_duty_cycle < rel.radio_duty_cycle


class TestFairness:
    def test_four_segment_windows_share_fairly(self):
        r = run_two_flows(1, window_segments=4, duration=40.0)
        assert r.jain_index > 0.95
        assert r.aggregate_kbps > 40

    def test_red_ecn_restores_three_hop_fairness(self):
        worst_plain = min(
            run_two_flows(3, window_segments=7, duration=40.0,
                          seed=s).jain_index
            for s in (0, 2)
        )
        worst_red = min(
            run_two_flows(3, window_segments=7, red=True, duration=40.0,
                          seed=s).jain_index
            for s in (0, 2)
        )
        assert worst_red > worst_plain


class TestDutyCycleAppendix:
    def test_rtt_tracks_sleep_interval_uplink(self):
        row = run_duty_cycle_point(1.0, uplink=True, duration=30.0)
        # §C.1: TCP self-clocking makes RTT ≈ the sleep interval
        assert row["rtt_mean"] == pytest.approx(1.0, rel=0.25)

    def test_goodput_collapses_with_long_intervals(self):
        fast = run_duty_cycle_point(0.02, uplink=True, duration=30.0)
        slow = run_duty_cycle_point(2.0, uplink=True, duration=30.0)
        assert slow["goodput_kbps"] < 0.25 * fast["goodput_kbps"]

    def test_adaptive_keeps_throughput_and_low_idle_duty(self):
        r = run_adaptive_duty_cycle(uplink=True, duration=30.0)
        assert r["goodput_kbps"] > 40
        assert r["idle_duty_cycle"] < 0.005  # ~0.1% in the paper
        assert r["sleep_interval_after_idle"] == 5.0
