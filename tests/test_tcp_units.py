"""Unit tests for the TCP building blocks."""

import pytest

from repro.core.buffers import ReceiveBuffer, SendBuffer
from repro.core.congestion import NewRenoCongestion
from repro.core.options import TcpOptions
from repro.core.rtt import RttEstimator
from repro.core.sack import SackScoreboard
from repro.core.segment import FLAG_ACK, FLAG_FIN, FLAG_SYN, Segment
from repro.core.seqnum import (
    MOD,
    seq_add,
    seq_between,
    seq_ge,
    seq_gt,
    seq_le,
    seq_lt,
    seq_max,
    seq_min,
    seq_sub,
)


# ----------------------------------------------------------------------
# sequence arithmetic
# ----------------------------------------------------------------------
class TestSeqnum:
    def test_basic_ordering(self):
        assert seq_lt(1, 2) and seq_le(2, 2) and seq_gt(3, 2) and seq_ge(2, 2)

    def test_wraparound(self):
        near_top = MOD - 10
        assert seq_lt(near_top, 5)  # 5 is "after" the wrap
        assert seq_gt(5, near_top)
        assert seq_sub(5, near_top) == 15
        assert seq_add(near_top, 20) == 10

    def test_min_max(self):
        assert seq_max(MOD - 1, 1) == 1
        assert seq_min(MOD - 1, 1) == MOD - 1

    def test_between(self):
        assert seq_between(10, 15, 20)
        assert not seq_between(10, 20, 20)
        assert seq_between(MOD - 5, 2, 10)


# ----------------------------------------------------------------------
# options and segments
# ----------------------------------------------------------------------
class TestOptionsSegment:
    def test_options_round_trip(self):
        opts = TcpOptions(
            mss=448, sack_permitted=True, ts_val=123456, ts_ecr=654321,
            sack_blocks=[(100, 200), (300, 400)],
        )
        parsed = TcpOptions.decode(opts.encode())
        assert parsed.mss == 448
        assert parsed.sack_permitted
        assert parsed.ts_val == 123456 and parsed.ts_ecr == 654321
        assert parsed.sack_blocks == [(100, 200), (300, 400)]

    def test_options_padding_to_4(self):
        opts = TcpOptions(sack_permitted=True)
        assert opts.wire_bytes() % 4 == 0
        assert len(opts.encode()) == opts.wire_bytes()

    def test_header_sizes_match_table6(self):
        # Table 6: TCP header is 20 B bare ...
        bare = Segment(src_port=1, dst_port=2, seq=0)
        assert bare.header_bytes == 20
        # ... and up to 44 B with timestamps + one SACK block.
        fat = Segment(
            src_port=1, dst_port=2, seq=0,
            options=TcpOptions(ts_val=1, ts_ecr=2, sack_blocks=[(5, 9)]),
        )
        assert fat.header_bytes == 44

    def test_segment_round_trip(self):
        seg = Segment(
            src_port=8000, dst_port=49152, seq=111, ack=222,
            flags=FLAG_SYN | FLAG_ACK, window=1792,
            options=TcpOptions(mss=448, ts_val=7, ts_ecr=8),
            data=b"hello",
        )
        parsed = Segment.decode(seg.encode())
        assert parsed.src_port == 8000 and parsed.dst_port == 49152
        assert parsed.seq == 111 and parsed.ack == 222
        assert parsed.syn and parsed.ack_flag and not parsed.fin
        assert parsed.window == 1792
        assert parsed.options.mss == 448
        assert parsed.data == b"hello"

    def test_seg_len_counts_syn_fin(self):
        seg = Segment(src_port=1, dst_port=2, seq=0, flags=FLAG_SYN)
        assert seg.seg_len == 1
        seg = Segment(src_port=1, dst_port=2, seq=0, flags=FLAG_FIN, data=b"xy")
        assert seg.seg_len == 3

    def test_decode_rejects_garbage(self):
        with pytest.raises(ValueError):
            Segment.decode(b"short")


# ----------------------------------------------------------------------
# buffers
# ----------------------------------------------------------------------
class TestSendBuffer:
    def test_write_and_ack(self):
        buf = SendBuffer(10)
        assert buf.write(b"abcdef") == 6
        assert buf.used == 6 and buf.free == 4
        assert buf.peek(0, 3) == b"abc"
        assert buf.peek(3, 3) == b"def"
        buf.ack(2)
        assert buf.peek(0, 4) == b"cdef"

    def test_write_clips_to_capacity(self):
        buf = SendBuffer(4)
        assert buf.write(b"abcdef") == 4
        assert buf.write(b"x") == 0

    def test_ack_bounds(self):
        buf = SendBuffer(4)
        buf.write(b"ab")
        with pytest.raises(ValueError):
            buf.ack(3)


class TestReceiveBuffer:
    def test_in_order_write_and_read(self):
        buf = ReceiveBuffer(16)
        assert buf.write(0, b"hello") == 5
        assert buf.available == 5
        assert buf.window == 11
        assert buf.read() == b"hello"
        assert buf.window == 16

    def test_out_of_order_held_then_absorbed(self):
        buf = ReceiveBuffer(16)
        assert buf.write(5, b"world") == 0  # OOO: no advance
        assert buf.out_of_order_bytes() == 5
        assert buf.write(0, b"hello") == 10  # gap filled: both absorbed
        assert buf.read() == b"helloworld"
        assert buf.out_of_order_bytes() == 0

    def test_overlapping_retransmission_trimmed(self):
        buf = ReceiveBuffer(16)
        buf.write(0, b"abcd")
        assert buf.write(-2, b"cdEF") == 2  # bytes c,d already in place
        assert buf.read() == b"abcdEF"

    def test_window_limits_writes(self):
        buf = ReceiveBuffer(8)
        assert buf.write(0, b"12345678ZZ") == 8  # trailing bytes trimmed
        assert buf.window == 0
        assert buf.write(0, b"x") == 0

    def test_circular_reuse(self):
        buf = ReceiveBuffer(8)
        for round_ in range(5):
            payload = bytes([65 + round_]) * 8
            assert buf.write(0, payload) == 8
            assert buf.read() == payload

    def test_sack_ranges(self):
        buf = ReceiveBuffer(32)
        rcv_nxt = 1000
        buf.write(4, b"BB")  # [1004, 1006)
        buf.write(10, b"CCC")  # [1010, 1013)
        blocks = buf.sack_ranges(rcv_nxt)
        assert (1004, 1006) in blocks
        assert (1010, 1013) in blocks

    def test_sack_ranges_limited_to_3(self):
        buf = ReceiveBuffer(64)
        for k in range(5):
            buf.write(2 + 4 * k, b"x")
        assert len(buf.sack_ranges(0)) == 3


# ----------------------------------------------------------------------
# RTT estimator
# ----------------------------------------------------------------------
class TestRtt:
    def test_initial_rto(self):
        rtt = RttEstimator(rto_initial=1.0)
        assert rtt.rto == 1.0

    def test_first_sample_seeds(self):
        rtt = RttEstimator(rto_min=0.2)
        rtt.update(0.3)
        assert rtt.srtt == pytest.approx(0.3)
        assert rtt.rto == pytest.approx(0.3 + 4 * 0.15)

    def test_smoothing_converges(self):
        rtt = RttEstimator(rto_min=0.1)
        for _ in range(100):
            rtt.update(0.25)
        assert rtt.srtt == pytest.approx(0.25, rel=0.01)
        assert rtt.rttvar < 0.01

    def test_rto_clamped(self):
        rtt = RttEstimator(rto_min=1.0, rto_max=4.0)
        rtt.update(0.01)
        assert rtt.rto == 1.0
        for _ in range(5):
            rtt.update(100.0)
        assert rtt.rto == 4.0

    def test_backoff_doubles_and_clamps(self):
        rtt = RttEstimator(rto_initial=1.0, rto_max=8.0)
        assert rtt.backed_off(0) == 1.0
        assert rtt.backed_off(1) == 2.0
        assert rtt.backed_off(2) == 4.0
        assert rtt.backed_off(10) == 8.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            RttEstimator().update(-1)

    def test_reset_forgets_everything(self):
        rtt = RttEstimator()
        rtt.update(0.3)
        rtt.update(0.5)
        rtt.reset()
        assert rtt.srtt is None
        assert rtt.rttvar == 0.0
        assert rtt.samples == 0
        assert rtt.last_sample is None
        # a post-reset sample seeds the estimator like the very first one
        rtt.update(0.2)
        assert rtt.srtt == pytest.approx(0.2)
        assert rtt.samples == 1


# ----------------------------------------------------------------------
# congestion control
# ----------------------------------------------------------------------
class TestNewReno:
    def make(self, mss=100, max_window=400, enabled=True):
        return NewRenoCongestion(mss, max_window, enabled=enabled)

    def test_slow_start_doubles_per_window(self):
        cc = self.make()
        start = cc.cwnd
        cc.on_ack(100, now=1.0)
        assert cc.cwnd == start + 100

    def test_cwnd_capped_at_buffer(self):
        cc = self.make()
        for i in range(20):
            cc.on_ack(100, now=float(i))
        assert cc.cwnd == 400  # the small-buffer regime of §7.3

    def test_recovery_halves(self):
        cc = self.make()
        for i in range(20):
            cc.on_ack(100, now=float(i))
        cc.enter_recovery(flight_size=400, snd_nxt=4000, now=21.0)
        assert cc.ssthresh == 200
        assert cc.in_recovery
        cc.exit_recovery(now=22.0)
        assert cc.cwnd == 200
        assert not cc.in_recovery

    def test_timeout_collapses_to_one_mss(self):
        cc = self.make()
        for i in range(20):
            cc.on_ack(100, now=float(i))
        cc.on_timeout(flight_size=400, now=21.0)
        assert cc.cwnd == 100
        assert cc.timeouts == 1
        assert cc.in_slow_start

    def test_recovery_recovers_quickly_with_small_window(self):
        # §7.3: with a 4-segment window, cwnd is back at max within a
        # handful of ACKs after a loss event.
        cc = self.make(mss=100, max_window=400)
        for i in range(10):
            cc.on_ack(100, now=float(i))
        cc.on_timeout(400, now=11.0)
        acks_needed = 0
        t = 12.0
        while cc.cwnd < 400 and acks_needed < 50:
            cc.on_ack(100, now=t)
            acks_needed += 1
            t += 1
        assert acks_needed <= 8  # ~2 RTTs' worth of ACKs at w=4

    def test_disabled_cc_uses_full_window(self):
        cc = self.make(enabled=False)
        assert cc.window() == 400
        cc.on_timeout(400, now=1.0)
        assert cc.window() == 400
        assert cc.timeouts == 1

    def test_ecn_echo_halves_like_loss(self):
        cc = self.make()
        for i in range(20):
            cc.on_ack(100, now=float(i))
        cc.on_ecn_echo(flight_size=400, now=21.0)
        assert cc.cwnd == 200


# ----------------------------------------------------------------------
# SACK scoreboard
# ----------------------------------------------------------------------
class TestScoreboard:
    def test_update_and_merge(self):
        sb = SackScoreboard()
        sb.update([(100, 200)], snd_una=0)
        sb.update([(150, 300)], snd_una=0)
        assert sb.ranges == [(100, 300)]
        assert sb.sacked_bytes() == 200

    def test_advance_prunes(self):
        sb = SackScoreboard()
        sb.update([(100, 200), (300, 400)], snd_una=0)
        sb.advance(250)
        assert sb.ranges == [(300, 400)]

    def test_is_sacked(self):
        sb = SackScoreboard()
        sb.update([(100, 200)], snd_una=0)
        assert sb.is_sacked(120, 180)
        assert not sb.is_sacked(90, 120)

    def test_first_hole_before_first_range(self):
        sb = SackScoreboard()
        sb.update([(100, 200)], snd_una=0)
        hole = sb.first_hole(snd_una=0, snd_nxt=500, mss=50)
        assert hole == (0, 50)

    def test_first_hole_between_ranges(self):
        sb = SackScoreboard()
        sb.update([(0, 100), (200, 300)], snd_una=0)
        sb.advance(100)
        hole = sb.first_hole(snd_una=100, snd_nxt=500, mss=1000)
        assert hole == (100, 200)

    def test_no_hole_when_empty(self):
        sb = SackScoreboard()
        assert sb.first_hole(0, 100, 50) is None

    def test_malformed_block_ignored(self):
        sb = SackScoreboard()
        sb.update([(200, 100)], snd_una=0)
        assert sb.ranges == []


# ----------------------------------------------------------------------
# timestamp-echo regressions (PR 3): ts_ecr == 0 is a legitimate echo
# at the 32-bit timestamp wrap, not an absent option
# ----------------------------------------------------------------------
class TestTimestampEchoAtWrap:
    @staticmethod
    def _established(seed=0):
        from tests.test_tcp_edge_cases import make_conn_pair

        net, conn, server = make_conn_pair(seed=seed)
        assert conn.ts_enabled
        return net, conn, server

    def _ack_with_echo(self, conn, ts_ecr, acked=0):
        return Segment(
            src_port=8000, dst_port=conn.local_port,
            seq=conn.rcv_nxt, ack=seq_add(conn.snd_una, acked),
            flags=FLAG_ACK, window=4096,
            options=TcpOptions(ts_val=7, ts_ecr=ts_ecr),
        )

    def test_rtt_sampled_when_echo_is_zero(self):
        net, conn, _ = self._established()
        # sender's clock just wrapped: now_ms is small, the echo is 0
        conn.ts_clock = lambda now: 3
        before = conn.rtt.samples
        conn._sample_rtt(self._ack_with_echo(conn, ts_ecr=0))
        assert conn.rtt.samples == before + 1
        assert conn.rtt.last_sample == pytest.approx(0.003)

    def test_rtt_skips_absent_echo(self):
        net, conn, _ = self._established()
        seg = self._ack_with_echo(conn, ts_ecr=0)
        seg.options = TcpOptions()  # no timestamp option at all
        before = conn.rtt.samples
        conn._sample_rtt(seg)
        assert conn.rtt.samples == before

    def test_rtt_skips_insane_echo(self):
        net, conn, _ = self._established()
        conn.ts_clock = lambda now: 3
        before = conn.rtt.samples
        # echo from the "future": wrap-aware delta lands >= 2**28
        conn._sample_rtt(self._ack_with_echo(conn, ts_ecr=(1 << 29)))
        assert conn.rtt.samples == before

    def test_bad_rexmit_undo_fires_on_zero_echo(self):
        net, conn, _ = self._established()
        conn.send(b"x" * 100)
        conn.output()  # data in flight; snd_nxt > snd_una
        conn._badrexmit = {"cwnd": 1344, "ssthresh": 896, "ts": 2}
        conn.cc.cwnd = 448
        conn._ack_advance(self._ack_with_echo(conn, ts_ecr=0, acked=100))
        # echo 0 predates the retransmission stamp 2 (wrap-aware), so
        # the timeout was spurious and the congestion state is restored
        # (the ACK itself then grows cwnd from the restored value)
        assert conn.cc.cwnd >= 1344
        assert conn.cc.ssthresh == 896
        assert conn._badrexmit is None
        assert conn.trace.counters.get("tcp.bad_retransmits_undone") == 1

    def test_bad_rexmit_no_undo_when_echo_matches_rexmit(self):
        net, conn, _ = self._established()
        conn.send(b"x" * 100)
        conn.output()
        conn._badrexmit = {"cwnd": 1344, "ssthresh": 896, "ts": 2}
        conn.cc.cwnd = 448
        shrunk_ssthresh = conn.cc.ssthresh
        # the ACK echoes the retransmission itself: genuine loss, keep
        # the congestion response
        conn._ack_advance(self._ack_with_echo(conn, ts_ecr=2, acked=100))
        assert conn.cc.ssthresh == shrunk_ssthresh != 896
        assert conn._badrexmit is None
        assert not conn.trace.counters.get("tcp.bad_retransmits_undone")
