"""Sleepy end device: polling, fast-poll, adaptive interval, slotting."""

from repro.mac.link import MacLayer
from repro.mac.poll import PollParams, SleepyEndDevice
from repro.phy.energy import RadioState
from repro.phy.medium import Medium
from repro.phy.radio import Radio
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams


def make_pair(poll_params):
    sim = Simulator()
    rng = RngStreams(5)
    medium = Medium(sim, rng=rng, comm_range=10.0)
    parent_radio = Radio(sim, medium, 0, (0, 0))
    child_radio = Radio(sim, medium, 1, (5, 0))
    parent = MacLayer(sim, parent_radio, rng)
    child = MacLayer(sim, child_radio, rng)
    parent.mark_sleepy_child(1)
    device = SleepyEndDevice(sim, child, parent=0, params=poll_params)
    return sim, parent, child, device


def test_sleeps_between_polls():
    sim, parent, child, device = make_pair(PollParams(poll_interval=10.0))
    sim.run(until=5.0)
    assert child.radio.state is RadioState.SLEEP


def test_poll_retrieves_parked_frame():
    sim, parent, child, device = make_pair(PollParams(poll_interval=2.0))
    got = []
    child.on_receive = lambda p, s, f: got.append(p)
    parent.send(b"down", 20, dst=1)
    sim.run(until=1.0)
    assert got == []
    sim.run(until=3.0)  # past the poll
    assert got == [b"down"]
    # radio back asleep after the exchange (before the next poll at t=4)
    sim.run(until=3.9)
    assert child.radio.state is RadioState.SLEEP


def test_fast_poll_reduces_latency():
    sim, parent, child, device = make_pair(
        PollParams(poll_interval=100.0, fast_poll_interval=0.1)
    )
    got = []
    child.on_receive = lambda p, s, f: got.append((sim.now, p))
    device.set_fast_poll(True)
    sim.run(until=0.5)
    parent.send(b"x", 10, dst=1)
    sim.run(until=2.0)
    assert got and got[0][0] < 1.0


def test_fast_poll_off_returns_to_slow_and_sleeps():
    sim, parent, child, device = make_pair(
        PollParams(poll_interval=50.0, fast_poll_interval=0.1)
    )
    device.set_fast_poll(True)
    sim.run(until=1.0)
    device.set_fast_poll(False)
    sim.run(until=2.0)
    assert child.radio.state is RadioState.SLEEP
    assert device.sleep_interval == 50.0


def test_duty_cycle_scales_with_interval():
    results = {}
    for interval in (0.1, 1.0):
        sim, parent, child, device = make_pair(
            PollParams(poll_interval=interval)
        )
        sim.run(until=30.0)
        results[interval] = child.radio.energy.radio_duty_cycle()
    assert results[0.1] > 3 * results[1.0]


def test_adaptive_interval_grows_when_idle():
    sim, parent, child, device = make_pair(
        PollParams(adaptive=True, smin=0.05, smax=2.0)
    )
    sim.run(until=30.0)
    assert device.sleep_interval == 2.0


def test_adaptive_interval_resets_on_downstream_packet():
    sim, parent, child, device = make_pair(
        PollParams(adaptive=True, smin=0.05, smax=2.0)
    )
    sim.run(until=20.0)
    assert device.sleep_interval == 2.0
    parent.send(b"x", 10, dst=1)
    sim.run(until=25.0)
    assert device.sleep_interval < 2.0 or device.polls_sent > 10


def test_uplink_any_time_even_while_duty_cycled():
    sim, parent, child, device = make_pair(PollParams(poll_interval=60.0))
    got = []
    parent.on_receive = lambda p, s, f: got.append((sim.now, p))
    sim.schedule(5.0, lambda: (device.notify_tx_pending(),
                               child.send(b"up", 10, dst=0)))
    sim.run(until=6.0)
    assert got and got[0][0] < 5.5


def test_hold_uplink_while_listening():
    sim, parent, child, device = make_pair(
        PollParams(poll_interval=1.0, listen_window=0.2,
                   hold_uplink_while_listening=True)
    )
    downs = []
    ups = []
    child.on_receive = lambda p, s, f: downs.append(sim.now)
    parent.on_receive = lambda p, s, f: ups.append(sim.now)
    # park two downlink frames, and queue an uplink frame at poll time
    parent.send(b"d1", 20, dst=1)
    parent.send(b"d2", 20, dst=1)

    def queue_up():
        child.send(b"up", 10, dst=0)

    sim.schedule(1.001, queue_up)  # right as the poll begins
    sim.run(until=3.0)
    assert len(downs) == 2
    assert len(ups) == 1
    # the uplink frame waited for the listen phase to finish
    assert ups[0] >= downs[-1]
    assert not child.paused


def test_data_request_timeout_counted():
    sim, parent, child, device = make_pair(
        PollParams(poll_interval=1.0, listen_window=0.05)
    )
    # disconnect the parent so polls fail
    parent.radio.medium.block_link(0, 1)
    sim.run(until=5.0)
    assert device.data_request_timeouts >= 3
