"""Node assembly: roles, configuration, meters, gateway reassembly."""

import pytest

from repro.experiments.topology import CLOUD_ID, build_chain, build_pair
from repro.net.node import Node, NodeConfig
from repro.net.queues import RedParams
from repro.net.routing import StaticRouting
from repro.phy.medium import Medium
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams


def make_node(config=None, node_id=1):
    sim = Simulator()
    medium = Medium(sim, rng=RngStreams(0))
    routing = StaticRouting()
    node = Node(sim, medium, RngStreams(0), node_id, (0, 0), routing,
                config=config)
    return sim, node


def test_default_node_has_full_stack():
    sim, node = make_node()
    assert node.radio is not None
    assert node.mac is not None
    assert node.adaptation is not None
    assert node.udp is not None
    assert node.sleepy is None
    assert node.ipv6.forward_queue is None


def test_red_config_creates_forward_queue_and_per_hop_reassembly():
    sim, node = make_node(NodeConfig(red=RedParams()))
    assert node.ipv6.forward_queue is not None
    assert node.adaptation.reassemble_per_hop


def test_phy_override_applies():
    from repro.models.platforms import phy_profile

    sim, node = make_node(NodeConfig(phy=phy_profile("telosb")))
    assert node.radio.params.spi_overhead_factor == 5.0


def test_deaf_csma_flag_reaches_radio():
    sim, node = make_node(NodeConfig(deaf_csma=True))
    assert node.radio.deaf_csma


def test_meters_reset():
    sim, node = make_node()
    sim.now = 10.0
    node.reset_meters()
    sim.now = 20.0
    assert node.radio.energy.elapsed() == pytest.approx(10.0)
    assert 0.0 <= node.radio_duty_cycle() <= 1.0
    assert 0.0 <= node.cpu_duty_cycle() <= 1.0


def test_border_router_reassembles_datagrams_leaving_mesh():
    """Fragments for an off-mesh destination must be reassembled at the
    border router before crossing the wired link."""
    net = build_chain(2, seed=50)
    got = []
    from repro.net.udp import UdpStack

    cloud_udp = UdpStack(net.cloud)
    cloud_udp.bind(5683, lambda d, p: got.append(d.payload_bytes))
    net.nodes[2].udp.send(CLOUD_ID, 6000, 5683, b"r" * 500, 500,
                          dst_is_cloud=True)
    net.sim.run(until=3.0)
    assert got == [500]
    border = net.nodes[0]
    assert border.trace.counters.get("lowpan.reassembled") == 1
    # the relay in the middle forwarded fragments without reassembling
    assert net.nodes[1].trace.counters.get("lowpan.reassembled") == 0


def test_make_sleepy_marks_parent():
    net = build_pair(seed=51)
    net.nodes[1].make_sleepy(net.nodes[0])
    assert 1 in net.nodes[0].mac.sleepy_children
    assert net.nodes[1].sleepy is not None


def test_per_node_configs_are_independent():
    config = NodeConfig()
    net = build_chain(2, seed=52, node_config=config)
    net.nodes[1].mac.params.retry_delay = 0.5
    assert net.nodes[2].mac.params.retry_delay != 0.5
    assert config.mac.retry_delay != 0.5  # caller's template untouched
