"""Text-rendering utilities."""

from repro.experiments.plotting import (
    render_bars,
    render_network_map,
    render_series,
    render_topology,
)
from repro.experiments.topology import build_testbed


class TestRenderSeries:
    def test_fills_area_under_steps(self):
        out = render_series([(0, 1.0), (5, 0.5), (10, 1.0)],
                            width=20, height=6)
        lines = out.splitlines()
        assert any("#" in line for line in lines)
        # bottom row fully filled (values always > 0)
        assert lines[-3].count("#") == 20

    def test_empty(self):
        assert render_series([]) == "(empty series)"

    def test_label_header(self):
        out = render_series([(0, 2.0)], y_label="cwnd")
        assert out.splitlines()[0].startswith("cwnd")

    def test_constant_series_is_flat_top(self):
        out = render_series([(0, 3.0), (10, 3.0)], width=10, height=4)
        top_row = out.splitlines()[0]
        assert top_row.count("#") == 10


class TestRenderBars:
    def test_proportional_bars(self):
        out = render_bars({"a": 10.0, "b": 5.0}, width=20)
        a_line, b_line = out.splitlines()
        assert a_line.count("#") == 20
        assert b_line.count("#") == 10

    def test_zero_value_gets_no_bar(self):
        out = render_bars({"x": 0.0, "y": 1.0})
        assert out.splitlines()[0].count("#") == 0

    def test_empty(self):
        assert render_bars({}) == "(no data)"

    def test_unit_suffix(self):
        out = render_bars({"g": 2.5}, unit=" kb/s")
        assert "2.5 kb/s" in out


class TestRenderTopology:
    def test_nodes_and_routes_drawn(self):
        out = render_topology(
            {1: (0.0, 0.0), 2: (10.0, 0.0)},
            routes=[(2, 1)],
            width=30, height=5,
        )
        assert "1" in out and "2" in out
        assert "." in out  # the route line

    def test_empty(self):
        assert render_topology({}) == "(no nodes)"

    def test_network_map_shows_border_and_leaves(self):
        net = build_testbed(seed=1, sleepy_leaves=False)
        out = render_network_map(net)
        assert "[1]" in out  # border router
        assert "(12)" in out  # a leaf
        assert "." in out  # uplink routes
