"""IPHC compression sizes must reproduce Table 6's IPv6 range (2-28 B)."""

from repro.lowpan.iphc import (
    PROTO_TCP,
    PROTO_UDP,
    CompressionContext,
    best_case_ipv6,
    compressed_ipv6_bytes,
    compressed_udp_bytes,
    compression_savings,
    worst_case_ipv6,
)


def test_best_case_is_2_bytes():
    # Table 6: IPv6 header compresses to as little as 2 bytes.
    assert best_case_ipv6() == 2


def test_worst_case_is_28_bytes():
    # Table 6: ... and at most 28 bytes in the first frame.
    assert worst_case_ipv6() == 28


def test_tcp_costs_one_inline_next_header_byte():
    ctx = CompressionContext()
    assert (
        compressed_ipv6_bytes(PROTO_TCP, ctx)
        == compressed_ipv6_bytes(PROTO_UDP, ctx) + 1
    )


def test_ecn_costs_one_byte():
    plain = compressed_ipv6_bytes(PROTO_TCP, CompressionContext())
    with_ecn = compressed_ipv6_bytes(PROTO_TCP, CompressionContext(ecn_present=True))
    assert with_ecn == plain + 1


def test_inline_hop_limit_costs_one_byte():
    base = compressed_ipv6_bytes(PROTO_TCP, CompressionContext())
    inline = compressed_ipv6_bytes(
        PROTO_TCP, CompressionContext(hop_limit_compressible=False)
    )
    assert inline == base + 1


def test_address_elision_tiers():
    full = compressed_ipv6_bytes(
        PROTO_UDP,
        CompressionContext(dst_prefix_context=False, dst_iid_from_mac=False),
    )
    iid_only = compressed_ipv6_bytes(
        PROTO_UDP, CompressionContext(dst_iid_from_mac=False)
    )
    elided = compressed_ipv6_bytes(PROTO_UDP, CompressionContext())
    assert full == elided + 16
    assert iid_only == elided + 8


def test_udp_nhc_port_compression():
    # both ports in 0xF0B0/4-bit space: 1 byte of ports
    assert compressed_udp_bytes(0xF0B1, 0xF0B2) == 1 + 1 + 2
    # one port in 0xF000/8-bit space: 3 bytes of ports
    assert compressed_udp_bytes(0xF001, 5683) == 1 + 3 + 2
    # arbitrary ports: 4 bytes of ports
    assert compressed_udp_bytes(5683, 5683) == 1 + 4 + 2


def test_savings_positive_for_all_contexts():
    for ecn in (False, True):
        for hop in (False, True):
            ctx = CompressionContext(ecn_present=ecn, hop_limit_compressible=hop)
            assert compression_savings(PROTO_TCP, ctx) > 0
