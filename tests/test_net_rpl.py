"""RPL-lite: DODAG formation, downward routes, repair, TCP on top."""

from repro.core.simplified import tcplp_params
from repro.core.socket_api import TcpStack
from repro.experiments.topology import build_chain, build_pair
from repro.experiments.workload import BulkTransfer
from repro.net.rpl import (
    MIN_HOP_RANK_INCREASE,
    RplDao,
    RplDio,
    enable_rpl,
)


def rpl_chain(hops, seed=70, **kw):
    net = build_chain(hops, seed=seed, with_cloud=False)
    routing = enable_rpl(net, **kw)
    return net, routing


class TestDodagFormation:
    def test_ranks_follow_hop_distance(self):
        net, routing = rpl_chain(3)
        net.sim.run(until=30.0)
        ranks = {nid: routing._nodes[nid].rank for nid in net.nodes}
        assert ranks[0] == 0
        for nid in (1, 2, 3):
            assert ranks[nid] == nid * MIN_HOP_RANK_INCREASE

    def test_parents_point_toward_root(self):
        net, routing = rpl_chain(3)
        net.sim.run(until=30.0)
        for nid in (1, 2, 3):
            assert routing._nodes[nid].preferred_parent == nid - 1

    def test_convergence_and_downward_routes(self):
        net, routing = rpl_chain(3)
        net.sim.run(until=60.0)
        assert routing.converged()
        # root can route down to node 3 via node 1
        assert routing.next_hop(0, 3) == 1
        assert routing.next_hop(1, 3) == 2
        # everyone routes up via parents
        assert routing.next_hop(3, 0) == 2

    def test_unjoined_node_has_no_routes(self):
        net, routing = rpl_chain(1)
        # before any DIO propagates
        assert routing.next_hop(1, 0) is None


class TestDataOverRpl:
    def test_udp_end_to_end_over_rpl_routes(self):
        net, routing = rpl_chain(2)
        net.sim.run(until=40.0)
        assert routing.converged()
        got = []
        net.nodes[0].udp.bind(7000, lambda d, p: got.append(d.payload))
        net.nodes[2].udp.send(0, 7001, 7000, b"via rpl", 7)
        net.sim.run(until=45.0)
        assert got == [b"via rpl"]

    def test_tcp_bulk_over_rpl_matches_static_routing(self):
        net, routing = rpl_chain(2)
        for n in net.nodes.values():
            n.mac.params.retry_delay = 0.04
        net.sim.run(until=40.0)  # let the DODAG converge
        src = TcpStack(net.sim, net.nodes[2].ipv6, 2)
        dst = TcpStack(net.sim, net.nodes[0].ipv6, 0)
        xfer = BulkTransfer(net.sim, src, dst, receiver_id=0,
                            params=tcplp_params(),
                            receiver_params=tcplp_params())
        result = xfer.measure(10.0, 30.0)
        # §7.2-class two-hop goodput, now with live routing underneath
        assert result.goodput_kbps > 18


class TestRepair:
    def test_parent_loss_triggers_reselection(self):
        # diamond: root 0; relays 1 and 2 both hear 0 and 3
        net = build_pair(seed=71)  # placeholder net for sim/medium reuse
        from repro.net.node import Node
        from repro.experiments.topology import Network
        from repro.phy.medium import Medium
        from repro.sim.engine import Simulator
        from repro.sim.rng import RngStreams

        sim = Simulator()
        rng = RngStreams(72)
        medium = Medium(sim, rng=rng, comm_range=10.0)
        nodes = {}
        positions = {0: (0.0, 0.0), 1: (8.0, 3.0), 2: (8.0, -3.0),
                     3: (16.0, 0.0)}
        placeholder = type("R", (), {"next_hop": lambda self, a, b: None})()
        for nid, pos in positions.items():
            nodes[nid] = Node(sim, medium, rng, nid, pos, placeholder)
        net = Network(sim, rng, medium, nodes, placeholder, border_id=0)
        routing = enable_rpl(net, parent_lifetime=10.0)
        sim.run(until=30.0)
        leaf = routing._nodes[3]
        first_parent = leaf.preferred_parent
        assert first_parent in (1, 2)
        # kill the current parent's links entirely
        for other in positions:
            if other != first_parent:
                medium.block_link(first_parent, other)
        sim.run(until=90.0)
        assert leaf.preferred_parent in (1, 2)
        assert leaf.preferred_parent != first_parent
        assert routing._nodes[3].joined


class TestControlMessages:
    def test_dio_sizes(self):
        assert RplDio(0, 256).wire_bytes == 24
        assert RplDao(3, 3).wire_bytes == 24

    def test_root_rank_is_zero_and_stable(self):
        net, routing = rpl_chain(1)
        net.sim.run(until=20.0)
        assert routing._nodes[0].rank == 0
        assert routing._nodes[0].is_root

    def test_trickle_quiets_dio_traffic_when_stable(self):
        net, routing = rpl_chain(1, dio_imax=8.0)
        net.sim.run(until=40.0)
        early = routing._nodes[0].trace.counters.get("rpl.dios_sent")
        net.sim.run(until=80.0)
        late = routing._nodes[0].trace.counters.get("rpl.dios_sent")
        # steady state: at most ~1 DIO per imax interval
        assert late - early <= 7
