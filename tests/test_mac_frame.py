"""MAC frame sizes and byte codec round-trips."""

import pytest

from repro.mac.frame import (
    ACK_FRAME_BYTES,
    BROADCAST,
    DATA_HEADER_BYTES,
    Frame,
    FrameKind,
    decode_frame,
)


def test_data_header_is_23_bytes():
    # Paper Table 6: IEEE 802.15.4 header overhead = 23 B per frame.
    f = Frame(kind=FrameKind.DATA, src=1, dst=2, payload_bytes=0)
    assert f.byte_size == DATA_HEADER_BYTES == 23


def test_data_frame_size_includes_payload():
    f = Frame(kind=FrameKind.DATA, src=1, dst=2, payload_bytes=104)
    assert f.byte_size == 127  # exactly the 802.15.4 maximum


def test_ack_frame_is_5_bytes():
    f = Frame(kind=FrameKind.ACK, src=1, dst=2, ack_request=False)
    assert f.byte_size == ACK_FRAME_BYTES == 5


def test_data_request_size():
    f = Frame(kind=FrameKind.DATA_REQUEST, src=1, dst=2)
    assert f.byte_size == 24


def test_broadcast_flag():
    f = Frame(kind=FrameKind.DATA, src=1, dst=BROADCAST, ack_request=False)
    assert f.is_broadcast


def test_encode_length_matches_byte_size():
    f = Frame(kind=FrameKind.DATA, src=1, dst=2, seq=9, payload_bytes=40)
    assert len(f.encode()) == f.byte_size


def test_data_round_trip():
    f = Frame(
        kind=FrameKind.DATA, src=7, dst=12, seq=200,
        pending=True, ack_request=True, payload_bytes=10,
    )
    g = decode_frame(f.encode(b"0123456789"))
    assert g.kind is FrameKind.DATA
    assert (g.src, g.dst, g.seq) == (7, 12, 200)
    assert g.pending and g.ack_request
    assert g.payload == b"0123456789"
    assert g.payload_bytes == 10


def test_ack_round_trip():
    f = Frame(kind=FrameKind.ACK, src=0, dst=0, seq=55, pending=True,
              ack_request=False)
    g = decode_frame(f.encode())
    assert g.kind is FrameKind.ACK
    assert g.seq == 55
    assert g.pending


def test_data_request_round_trip():
    f = Frame(kind=FrameKind.DATA_REQUEST, src=3, dst=1, seq=77)
    g = decode_frame(f.encode())
    assert g.kind is FrameKind.DATA_REQUEST
    assert (g.src, g.dst, g.seq) == (3, 1, 77)
    assert len(f.encode()) == f.byte_size


def test_broadcast_round_trip():
    f = Frame(kind=FrameKind.DATA, src=3, dst=BROADCAST, seq=1,
              ack_request=False, payload_bytes=4)
    g = decode_frame(f.encode(b"abcd"))
    assert g.dst == BROADCAST


def test_decode_rejects_garbage():
    with pytest.raises(ValueError):
        decode_frame(b"\x00")
    with pytest.raises(ValueError):
        decode_frame(b"\x07\x00\x01\x00\x00")  # type bits 0b111
