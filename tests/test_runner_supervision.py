"""Supervised-run tests for the experiment runner.

The acceptance contract: a hung experiment becomes a *recorded
failure* at the watchdog deadline without disturbing the rest of the
batch; a crashed worker is retried with backoff and then recorded; an
interrupt still yields a valid partial document with
``_meta.interrupted``; and ``--verify`` violations survive the worker
process boundary.

The hostile experiments are injected via ``register_experiment`` as
module-level functions (supervised workers fork, but keeping them
importable matches the documented contract).
"""

import os
import time

import pytest

from repro.experiments import runner
from repro.experiments.topology import build_pair


def _hang(quick):
    time.sleep(60)
    return {}


def _crash(quick):
    os._exit(17)


def _ok(quick):
    return {"ok": True, "quick": quick}


def _interrupt(quick):
    raise KeyboardInterrupt


def _kernel_corruptor(quick):
    """Trip probe_kernel under --verify: fake a clock rollback."""
    net = build_pair(seed=2)
    if net.verify is not None:
        net.verify._last_now = 1e9
    net.sim.run(until=1.0)
    return {"done": True}


@pytest.fixture
def registered():
    names = []

    def register(name, factory):
        runner.register_experiment(name, factory)
        names.append(name)

    yield register
    for name in names:
        runner.unregister_experiment(name)


def quiet(_msg):
    pass


# ======================================================================
# Registration mechanics
# ======================================================================
def test_register_and_unregister_experiment(registered):
    registered("zz_extra", _ok)
    registry = runner.experiment_registry(quick=True)
    assert registry["zz_extra"]() == {"ok": True, "quick": True}
    runner.unregister_experiment("zz_extra")
    assert "zz_extra" not in runner.experiment_registry(quick=True)
    runner.unregister_experiment("zz_extra")  # idempotent


# ======================================================================
# Watchdog
# ======================================================================
def test_watchdog_converts_hang_into_recorded_failure(registered):
    registered("zz_ok", _ok)
    registered("zz_hang", _hang)
    results, meta = runner.run_all_detailed(
        quick=True, only=["static_tables", "zz_ok", "zz_hang"],
        timeout=2.0, jobs=3, progress=quiet)
    # the hang is a recorded failure ...
    assert meta["errors"] == ["zz_hang"]
    assert "watchdog timeout after 2.0s" in results["zz_hang"]["error"]
    # ... and the rest of the batch is untouched
    assert results["zz_ok"] == {"ok": True, "quick": True}
    assert "table5" in results["static_tables"]
    assert meta["timeout_s"] == 2.0
    assert meta["interrupted"] is False
    assert set(meta["wall_times_s"]) == {"static_tables", "zz_ok",
                                         "zz_hang"}


# ======================================================================
# Crash retry with backoff
# ======================================================================
def test_crashed_worker_is_retried_then_recorded(registered):
    registered("zz_crash", _crash)
    t0 = time.monotonic()
    results, meta = runner.run_all_detailed(
        quick=True, only=["zz_crash"], timeout=30.0, retries=2,
        retry_backoff=0.1, progress=quiet)
    assert meta["errors"] == ["zz_crash"]
    assert ("worker crashed with exit code 17 after 3 attempt(s)"
            in results["zz_crash"]["error"])
    # exponential backoff actually waited: 0.1s + 0.2s between attempts
    assert time.monotonic() - t0 > 0.3


def test_successful_supervised_run_passes_result_through(registered):
    registered("zz_ok", _ok)
    results, meta = runner.run_all_detailed(
        quick=False, only=["zz_ok"], timeout=30.0, progress=quiet)
    assert results["zz_ok"] == {"ok": True, "quick": False}
    assert meta["errors"] == [] and meta["interrupted"] is False


# ======================================================================
# Interrupt: valid partial results
# ======================================================================
def test_serial_interrupt_yields_partial_document(registered):
    registered("zz_boom", _interrupt)
    registered("zz_after", _ok)
    results, meta = runner.run_all_detailed(
        quick=True, only=["static_tables", "zz_boom", "zz_after"],
        progress=quiet)
    assert meta["interrupted"] is True
    # everything that finished before the interrupt is present ...
    assert "table5" in results["static_tables"]
    # ... the interrupted experiment and everything after are not_run
    assert meta["not_run"] == ["zz_boom", "zz_after"]
    assert "zz_after" not in results


def test_interrupted_flag_always_present():
    _results, meta = runner.run_all_detailed(
        quick=True, only=["static_tables"], progress=quiet)
    assert meta["interrupted"] is False
    assert "not_run" not in meta


# ======================================================================
# --verify across the worker process boundary
# ======================================================================
def test_violations_survive_supervised_worker(registered):
    registered("zz_corrupt", _kernel_corruptor)
    results, meta = runner.run_all_detailed(
        quick=True, only=["zz_corrupt"], timeout=30.0, verify=True,
        progress=quiet)
    assert results["zz_corrupt"] == {"done": True}
    viols = meta["invariant_violations"]["zz_corrupt"]
    assert viols and viols[0]["probe"] == "probe_kernel"
    assert "backwards" in viols[0]["detail"]


def test_verify_clean_experiment_records_no_violations(registered):
    registered("zz_ok", _ok)
    _results, meta = runner.run_all_detailed(
        quick=True, only=["zz_ok"], verify=True, progress=quiet)
    assert meta["invariant_violations"] == {}
