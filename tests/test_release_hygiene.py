"""Release hygiene: docs present, API importable, examples compile."""

import pathlib
import py_compile


REPO = pathlib.Path(__file__).resolve().parent.parent


def test_documentation_files_exist_and_are_substantial():
    for name, minimum in (("README.md", 2000), ("DESIGN.md", 4000),
                          ("EXPERIMENTS.md", 4000),
                          ("docs/architecture.md", 3000)):
        path = REPO / name
        assert path.exists(), name
        assert len(path.read_text()) > minimum, name


def test_top_level_api_exports():
    import repro

    for name in repro.__all__:
        assert hasattr(repro, name), name
    assert repro.__version__ == "1.0.0"


def test_every_example_compiles():
    examples = sorted((REPO / "examples").glob("*.py"))
    assert len(examples) >= 5
    for script in examples:
        py_compile.compile(str(script), doraise=True)


def test_every_example_has_a_docstring_and_main():
    for script in sorted((REPO / "examples").glob("*.py")):
        source = script.read_text()
        assert source.lstrip().startswith(("#!", '"""')), script.name
        assert "def main()" in source, script.name
        assert '__main__' in source, script.name


def test_public_modules_have_docstrings():
    import importlib

    for module_name in (
        "repro.sim.engine", "repro.phy.radio", "repro.phy.medium",
        "repro.mac.link", "repro.mac.poll", "repro.lowpan.frag",
        "repro.net.ipv6", "repro.net.rpl", "repro.net.pcap",
        "repro.core.connection", "repro.core.buffers",
        "repro.core.congestion", "repro.app.coap", "repro.app.cocoa",
        "repro.app.sensor", "repro.models.throughput",
        "repro.experiments.topology",
    ):
        module = importlib.import_module(module_name)
        assert module.__doc__ and len(module.__doc__) > 80, module_name


def test_benchmarks_cover_every_paper_artifact():
    names = "\n".join(p.name for p in (REPO / "benchmarks").glob("test_*.py"))
    for artifact in ("table1", "table2_3_4", "table5_6", "fig4", "fig5",
                     "table7", "fig6_7", "sec72", "eq2", "fig8", "fig9",
                     "fig10_table8", "table9", "appendixC", "ablations"):
        assert artifact in names, artifact
