"""Tests for repro.faults: schedules, models, injector, invariants.

Covers the PR 3 acceptance criteria: schedule validation fails fast,
the Gilbert-Elliott model at its degenerate point matches UniformLoss
goodput within 5% on the Figure 9 scenario, injections are
byte-reproducible from the seed, and the invariant checkers catch
real violations.
"""

import json

import pytest

from repro.core.simplified import tcplp_params
from repro.core.socket_api import TcpStack
from repro.experiments.topology import build_chain, build_pair
from repro.experiments.workload import BulkTransfer
from repro.faults import (
    FaultInjector,
    FaultSchedule,
    FrameCorruption,
    GilbertElliottLoss,
    SkewedClock,
    auto_inject,
    drain_auto,
    invariants,
)
from repro.phy.medium import UniformLoss
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.sim.timers import Timer


# ======================================================================
# FaultSchedule validation
# ======================================================================
class TestScheduleValidation:
    def test_minimal_schedule_fills_defaults(self):
        sched = FaultSchedule.from_dict(
            {"faults": [{"kind": "bursty_loss",
                         "p_good_bad": 0.1, "p_bad_good": 0.5}]})
        fault = sched.faults[0]
        assert fault["loss_bad"] == 1.0
        assert fault["loss_good"] == 0.0
        assert fault["at"] == 0.0
        assert fault["until"] is None

    def test_bare_list_shorthand(self):
        sched = FaultSchedule.from_dict(
            [{"kind": "uniform_loss", "rate": 0.2}])
        assert len(sched) == 1

    def test_round_trip_through_json(self, tmp_path):
        spec = {"name": "rt", "faults": [
            {"kind": "link_flap", "a": 0, "b": 1, "at": 5.0,
             "down_for": 1.0, "repeat_every": 3.0, "count": 2},
            {"kind": "uniform_loss", "rate": 0.1, "link": [1, 0]},
        ]}
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec))
        sched = FaultSchedule.from_json(path)
        again = FaultSchedule.from_dict(sched.to_dict())
        assert again.to_dict() == sched.to_dict()
        assert again.faults[1]["link"] == (1, 0)

    @pytest.mark.parametrize("bad", [
        {"kind": "martian_attack"},
        {"kind": "bursty_loss", "p_good_bad": 0.1},          # missing field
        {"kind": "bursty_loss", "p_good_bad": 1.5, "p_bad_good": 0.5},
        {"kind": "uniform_loss", "rate": -0.1},
        {"kind": "uniform_loss", "rate": True},              # bool not number
        {"kind": "uniform_loss", "rate": 0.1, "bogus": 1},   # unknown field
        {"kind": "uniform_loss", "rate": 0.1, "link": [0]},  # malformed link
        {"kind": "uniform_loss", "rate": 0.1, "at": 5.0, "until": 5.0},
        {"kind": "link_flap", "a": 0, "b": 1, "at": -1.0, "down_for": 1.0},
        {"kind": "link_flap", "a": 0, "b": 1, "at": 0.0, "down_for": 1.0,
         "count": 3},                                        # no repeat_every
        {"kind": "link_flap", "a": 0, "b": 1, "at": 0.0, "down_for": 1.0,
         "count": 0},
        {"kind": "node_reboot", "node": 1, "at": 5.0, "outage": -1.0},
        {"kind": "clock_drift", "node": 0, "skew": 0.0},
        "not a dict",
    ])
    def test_invalid_entries_rejected(self, bad):
        with pytest.raises(ValueError):
            FaultSchedule.from_dict({"faults": [bad]})

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(ValueError):
            FaultSchedule.from_dict({"faults": [], "typo": 1})

    def test_by_kind(self):
        sched = FaultSchedule.from_dict({"faults": [
            {"kind": "uniform_loss", "rate": 0.1},
            {"kind": "node_reboot", "node": 1, "at": 1.0, "outage": 1.0},
            {"kind": "uniform_loss", "rate": 0.2},
        ]})
        rates = [f["rate"] for f in sched.by_kind("uniform_loss")]
        assert rates == [0.1, 0.2]


# ======================================================================
# Fault models
# ======================================================================
class TestGilbertElliott:
    def test_stationary_loss_rate(self):
        rng = RngStreams(1)
        ge = GilbertElliottLoss(0.03, 0.3, rng)
        assert ge.stationary_loss_rate() == pytest.approx(0.03 / 0.33)
        frozen = GilbertElliottLoss(0.0, 0.0, rng, loss_good=0.05)
        assert frozen.stationary_loss_rate() == 0.05

    def test_empirical_rate_tracks_stationary(self):
        rng = RngStreams(42)
        ge = GilbertElliottLoss(0.05, 0.45, rng)
        n = 20_000
        drops = sum(ge(0, 1, t * 0.01) for t in range(n))
        assert drops / n == pytest.approx(ge.stationary_loss_rate(),
                                          abs=0.01)

    def test_losses_are_bursty(self):
        """Mean burst length must approach 1/p_bad_good, not 1."""
        rng = RngStreams(7)
        ge = GilbertElliottLoss(0.02, 0.2, rng)  # expect ~5-frame bursts
        outcomes = [ge(0, 1, t * 0.01) for t in range(50_000)]
        bursts, run = [], 0
        for dropped in outcomes:
            if dropped:
                run += 1
            elif run:
                bursts.append(run)
                run = 0
        mean_burst = sum(bursts) / len(bursts)
        assert mean_burst == pytest.approx(1 / 0.2, rel=0.2)

    def test_per_link_state_is_independent(self):
        rng = RngStreams(3)
        ge = GilbertElliottLoss(0.5, 0.5, rng)
        ge(0, 1, 0.0)
        ge(2, 3, 0.0)
        assert set(ge._bad) == {(0, 1), (2, 3)}

    def test_window_gating_consumes_no_rng(self):
        rng = RngStreams(9)
        ge = GilbertElliottLoss(0.5, 0.5, rng, at=10.0, until=20.0)
        before = rng.random("probe")
        assert ge(0, 1, 5.0) is False     # before window
        assert ge(0, 1, 25.0) is False    # after window
        rng2 = RngStreams(9)
        rng2.random("probe")
        assert rng.random("fault-ge") == rng2.random("fault-ge")
        assert before is not None

    def test_link_filter(self):
        rng = RngStreams(5)
        ge = GilbertElliottLoss(1.0, 0.0, rng, link=(0, 1))
        assert ge(1, 0, 0.0) is False  # reverse direction untouched
        assert ge(0, 1, 0.0) is True   # p_good_bad=1, loss_bad=1


class TestFrameCorruption:
    def test_validates_rates(self):
        rng = RngStreams(1)
        with pytest.raises(ValueError):
            FrameCorruption(1.5, rng)
        with pytest.raises(ValueError):
            FrameCorruption(0.5, rng, truncate_rate=-0.1)

    def test_corruption_rate_and_classification(self):
        rng = RngStreams(11)
        seen = []
        fc = FrameCorruption(0.2, rng, truncate_rate=0.5,
                             on_corrupt=lambda s, r, k: seen.append(k))
        n = 10_000
        dropped = sum(fc(None, 0, 1) for _ in range(n))
        assert dropped / n == pytest.approx(0.2, abs=0.02)
        assert dropped == fc.corrupted == len(seen)
        truncs = seen.count("truncate")
        assert truncs / len(seen) == pytest.approx(0.5, abs=0.05)
        assert set(seen) == {"truncate", "bit_error"}


class TestSkewedClock:
    def test_skew_and_offset(self):
        clock = SkewedClock(skew=2.0, offset_ms=100)
        assert clock(1.0) == 2100

    def test_wraps_at_32_bits(self):
        clock = SkewedClock(offset_ms=(1 << 32) - 500)
        assert clock(1.0) == 500  # 1000 ms - 500 ms past the wrap

    def test_rejects_non_positive_skew(self):
        with pytest.raises(ValueError):
            SkewedClock(skew=0.0)


# ======================================================================
# Acceptance: degenerate GE == UniformLoss (Fig. 9 scenario, 5%)
# ======================================================================
def _fig9_goodput(loss_model_factory, seed=1, rate=0.09):
    net = build_pair(seed=seed)
    net.medium.loss_models.append(loss_model_factory(rate, net.rng))
    params = tcplp_params()
    node1, node0 = net.nodes[1], net.nodes[0]
    src = TcpStack(net.sim, node1.ipv6, 1, cpu=node1.radio.cpu)
    dst = TcpStack(net.sim, node0.ipv6, 0, cpu=node0.radio.cpu)
    xfer = BulkTransfer(net.sim, src, dst, receiver_id=0, params=params,
                        receiver_params=params)
    return xfer.measure(10.0, 40.0).goodput_kbps


def test_degenerate_ge_matches_uniform_loss_goodput():
    """GE at (p_gb=rate, p_bg=1-rate) is i.i.d. Bernoulli(rate), so the
    Fig. 9 one-hop goodput must land within 5% of UniformLoss."""
    rate = 0.09
    uniform = _fig9_goodput(lambda r, rng: UniformLoss(r, rng))
    degenerate = _fig9_goodput(
        lambda r, rng: GilbertElliottLoss(r, 1.0 - r, rng))
    assert degenerate == pytest.approx(uniform, rel=0.05)
    ge = GilbertElliottLoss(rate, 1.0 - rate, RngStreams(0))
    assert ge.stationary_loss_rate() == pytest.approx(rate)


# ======================================================================
# FaultInjector
# ======================================================================
def _flap_schedule():
    return FaultSchedule.from_dict({"faults": [
        {"kind": "link_flap", "a": 0, "b": 1, "at": 1.0, "down_for": 0.5,
         "repeat_every": 2.0, "count": 2},
    ]})


class TestInjector:
    def test_link_flap_blocks_and_unblocks(self):
        net = build_pair(seed=1)
        inj = FaultInjector(net, _flap_schedule()).arm()
        states = []
        for t in (0.9, 1.1, 1.6, 3.1, 3.6):
            net.sim.run(until=t)
            states.append((0, 1) in net.medium._blocked_links)
        assert states == [False, True, False, True, False]
        kinds = [(e.kind, e.time) for e in inj.events]
        assert kinds == [("link_down", 1.0), ("link_up", 1.5),
                         ("link_down", 3.0), ("link_up", 3.5)]

    def test_arm_is_idempotent(self):
        net = build_pair(seed=1)
        inj = FaultInjector(net, _flap_schedule())
        inj.arm().arm()
        net.sim.run(until=5.0)
        assert inj.counts["link_down"] == 2

    def test_node_reboot_cold_restarts(self):
        net = build_pair(seed=2)
        sched = FaultSchedule.from_dict({"faults": [
            {"kind": "node_reboot", "node": 1, "at": 1.0, "outage": 2.0},
        ]})
        inj = FaultInjector(net, sched).arm()
        net.sim.run(until=1.5)
        assert net.nodes[1].radio.powered is False
        with pytest.raises(RuntimeError):
            net.nodes[1].radio.transmit(object(), 32, lambda ok: None)
        net.sim.run(until=3.5)
        assert net.nodes[1].radio.powered is True
        assert [e.kind for e in inj.events] == ["node_crash", "node_reboot"]

    def test_node_reboot_unknown_node_rejected(self):
        net = build_pair(seed=2)
        sched = FaultSchedule.from_dict({"faults": [
            {"kind": "node_reboot", "node": 99, "at": 1.0, "outage": 2.0},
        ]})
        with pytest.raises(ValueError):
            FaultInjector(net, sched).arm()

    def test_crash_loses_tcp_state_and_reboot_accepts_again(self):
        """The crashed node's connections vanish without FIN/RST; after
        reboot a fresh connection to the same port succeeds."""
        net = build_pair(seed=3)
        sched = FaultSchedule.from_dict({"faults": [
            {"kind": "node_reboot", "node": 1, "at": 2.0, "outage": 1.0},
        ]})
        FaultInjector(net, sched).arm()
        stack0 = TcpStack(net.sim, net.nodes[0].ipv6, 0)
        stack1 = TcpStack(net.sim, net.nodes[1].ipv6, 1)
        stack1.listen(8000, lambda c: None, params=tcplp_params())
        conn = stack0.connect(1, 8000, params=tcplp_params())
        errors = []
        conn.on_error = errors.append
        net.sim.run(until=1.9)
        assert stack1.active_connections() == 1
        net.sim.run(until=2.1)
        assert stack1.active_connections() == 0  # state gone, silently
        # the survivor only notices when it next sends: the rebooted
        # stack has no matching socket and answers with a RST
        errors_before = list(errors)
        conn.send(b"hello, are you there?")
        net.sim.run(until=120.0)
        assert conn.state.value == "closed"
        assert len(errors) > len(errors_before)
        # after reboot the node accepts again (the listener survives the
        # crash, modelling an application that re-registers on boot)
        conn2 = stack0.connect(1, 8000, params=tcplp_params())
        connected = []
        conn2.on_connect = lambda: connected.append(net.sim.now)
        net.sim.run(until=125.0)
        assert connected

    def test_clock_drift_reaches_connection(self):
        net = build_pair(seed=4)
        sched = FaultSchedule.from_dict({"faults": [
            {"kind": "clock_drift", "node": 0, "skew": 2.0,
             "offset_ms": 100},
        ]})
        inj = FaultInjector(net, sched).arm()
        stack = TcpStack(net.sim, net.nodes[0].ipv6, 0)
        peer = TcpStack(net.sim, net.nodes[1].ipv6, 1)
        peer.listen(8000, lambda c: None, params=tcplp_params())
        conn = stack.connect(1, 8000, params=tcplp_params())
        assert conn.ts_clock is inj.clocks[0]
        net.sim.run(until=1.0)
        assert conn._now_ts() == inj.clocks[0](net.sim.now)

    def test_injector_log_is_deterministic(self):
        def run():
            net = build_chain(2, seed=5, with_cloud=False)
            sched = FaultSchedule.from_dict({"faults": [
                {"kind": "bursty_loss", "p_good_bad": 0.05,
                 "p_bad_good": 0.4},
                {"kind": "frame_corruption", "rate": 0.05},
                {"kind": "link_flap", "a": 0, "b": 1, "at": 3.0,
                 "down_for": 1.0},
            ]})
            inj = FaultInjector(net, sched).arm()
            params = tcplp_params()
            src = TcpStack(net.sim, net.nodes[2].ipv6, 2)
            dst = TcpStack(net.sim, net.nodes[0].ipv6, 0)
            xfer = BulkTransfer(net.sim, src, dst, receiver_id=0,
                                params=params, receiver_params=params)
            xfer.measure(2.0, 10.0)
            return [e.as_dict() for e in inj.events]

        log1, log2 = run(), run()
        assert log1 == log2
        assert any(e["kind"] == "frame_corrupted" for e in log1)

    def test_to_jsonl_exports_log(self, tmp_path):
        net = build_pair(seed=1)
        inj = FaultInjector(net, _flap_schedule()).arm()
        net.sim.run(until=5.0)
        path = tmp_path / "faults.jsonl"
        count = inj.to_jsonl(path)
        lines = path.read_text().splitlines()
        assert count == len(lines) == len(inj.events)
        assert json.loads(lines[0])["layer"] == "fault"

    def test_summary_counts_by_kind(self):
        net = build_pair(seed=1)
        inj = FaultInjector(net, _flap_schedule()).arm()
        net.sim.run(until=5.0)
        assert inj.summary() == {"link_down": 2, "link_up": 2}


# ======================================================================
# auto-injection (runner integration)
# ======================================================================
def test_auto_inject_attaches_to_built_networks():
    spec = {"faults": [{"kind": "uniform_loss", "rate": 0.1}]}
    auto_inject(spec)
    try:
        net = build_pair(seed=1)
        assert net.faults is not None
        assert net.faults.summary() == {"uniform_loss": 1}
        assert drain_auto() == [net.faults]
        assert drain_auto() == []
    finally:
        auto_inject(None)
    assert build_pair(seed=1).faults is None


# ======================================================================
# invariants
# ======================================================================
class TestInvariants:
    def test_stream_integrity_pass_and_fail(self):
        sent = b"abcdef"
        assert invariants.check_stream_integrity(sent, sent) == []
        assert invariants.check_stream_integrity(sent, b"abc", errors=["x"]) == []
        assert invariants.check_stream_integrity(sent, b"abc")  # short, no error
        assert invariants.check_stream_integrity(sent, b"abX", errors=["x"])

    def test_recovery_bound(self):
        check = invariants.check_recovery_bound
        assert check(10.0, 5.0, 60.0) == []
        assert check(None, 5.0, 60.0, errors=["failed"]) == []
        assert check(None, 5.0, 60.0)           # limbo
        assert check(100.0, 5.0, 60.0)          # too late

    def test_armed_timer_detected_and_cleared(self):
        sim = Simulator()
        timer = Timer(sim, lambda: None, "tcp-rexmt")
        timer.start(5.0)
        assert invariants.check_no_armed_tcp_timers(sim)
        timer.stop()
        assert invariants.check_no_armed_tcp_timers(sim) == []

    def test_non_tcp_timers_ignored(self):
        sim = Simulator()
        Timer(sim, lambda: None, "mac-ack").start(5.0)
        assert invariants.check_no_armed_tcp_timers(sim) == []

    def test_check_quiescent_flags_live_connection(self):
        net = build_pair(seed=6)
        stack0 = TcpStack(net.sim, net.nodes[0].ipv6, 0)
        stack1 = TcpStack(net.sim, net.nodes[1].ipv6, 1)
        stack1.listen(8000, lambda c: None, params=tcplp_params())
        stack0.connect(1, 8000, params=tcplp_params())
        net.sim.run(until=1.0)
        assert invariants.check_quiescent(net.sim, (stack0, stack1))


# ======================================================================
# CI smoke harness
# ======================================================================
def test_smoke_run_passes_all_invariants():
    from repro.faults import smoke

    result = smoke.run_once()
    assert result["violations"] == []
    assert result["done_at"] is not None
    # the transfer must actually straddle the scheduled chaos
    assert result["done_at"] > smoke.LAST_FAULT_AT
    kinds = {e.kind for e in result["injector"].events}
    assert {"node_crash", "node_reboot", "link_down"} <= kinds
