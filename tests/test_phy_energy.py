"""Radio-state ledger and CPU meter accounting."""

import pytest

from repro.phy.energy import CpuMeter, EnergyLedger, RadioState
from repro.sim.engine import Simulator


def test_ledger_accumulates_state_time():
    sim = Simulator()
    ledger = EnergyLedger(sim)  # starts in LISTEN
    sim.now = 2.0
    ledger.transition(RadioState.SLEEP)
    sim.now = 5.0
    ledger.transition(RadioState.TX)
    sim.now = 6.0
    assert ledger.time_in(RadioState.LISTEN) == pytest.approx(2.0)
    assert ledger.time_in(RadioState.SLEEP) == pytest.approx(3.0)
    assert ledger.time_in(RadioState.TX) == pytest.approx(1.0)


def test_radio_duty_cycle_excludes_sleep():
    sim = Simulator()
    ledger = EnergyLedger(sim)
    sim.now = 1.0
    ledger.transition(RadioState.SLEEP)
    sim.now = 10.0
    # awake 1 s of 10 s
    assert ledger.radio_duty_cycle() == pytest.approx(0.1)


def test_deaf_state_counts_as_awake_but_not_receiving():
    assert RadioState.DEAF.awake
    assert not RadioState.DEAF.can_receive
    assert RadioState.LISTEN.can_receive
    assert not RadioState.SLEEP.awake


def test_ledger_reset():
    sim = Simulator()
    ledger = EnergyLedger(sim)
    sim.now = 5.0
    ledger.reset()
    sim.now = 10.0
    assert ledger.elapsed() == pytest.approx(5.0)
    assert ledger.radio_duty_cycle() == pytest.approx(1.0)


def test_cpu_meter():
    sim = Simulator()
    cpu = CpuMeter(sim)
    cpu.charge(0.5)
    cpu.charge(0.25)
    sim.now = 10.0
    assert cpu.busy_time() == pytest.approx(0.75)
    assert cpu.cpu_duty_cycle() == pytest.approx(0.075)


def test_cpu_meter_rejects_negative():
    sim = Simulator()
    cpu = CpuMeter(sim)
    with pytest.raises(ValueError):
        cpu.charge(-1.0)


def test_cpu_duty_cycle_clamped():
    sim = Simulator()
    cpu = CpuMeter(sim)
    cpu.charge(100.0)
    sim.now = 1.0
    assert cpu.cpu_duty_cycle() == 1.0
