"""PHY timing constants must match the paper's measured anchors."""

import pytest

from repro.phy.params import PhyParams


@pytest.fixture
def phy():
    return PhyParams()


def test_full_frame_air_time_is_about_4_1_ms(phy):
    # Paper Table 5: a 127 B 802.15.4 frame takes 4.1 ms on air.
    air = phy.air_time(127)
    assert air == pytest.approx(4.1e-3, rel=0.05)


def test_effective_frame_time_is_about_8_2_ms(phy):
    # Paper §6.4: SPI overhead doubles the effective transmit time.
    assert phy.frame_tx_time(127) == pytest.approx(8.2e-3, rel=0.05)


def test_spi_time_is_the_difference(phy):
    assert phy.spi_time(127) == pytest.approx(
        phy.frame_tx_time(127) - phy.air_time(127)
    )


def test_air_time_scales_linearly(phy):
    assert phy.air_time(60) < phy.air_time(120)
    # doubling payload doesn't double time (preamble is constant)
    assert phy.air_time(120) < 2 * phy.air_time(60)


def test_ack_air_time_is_small(phy):
    assert phy.ack_air_time() < 0.5e-3


def test_unit_backoff_is_20_symbols(phy):
    assert phy.unit_backoff == pytest.approx(20 * phy.symbol_time)
