"""Protocol-engine tests against a scripted fake network.

These drive :class:`TcpConnection` directly — no radio, no 6LoWPAN —
so each RFC behaviour (handshake options, window-update rules,
timestamp echo, persist backoff, delayed-ACK timing, simultaneous
open) can be pinned down segment by segment.
"""

from repro.core.connection import TcpConnection, TcpState
from repro.core.options import TcpOptions
from repro.core.segment import (
    FLAG_ACK,
    FLAG_PSH,
    FLAG_SYN,
    Segment,
)
from repro.core.simplified import tcplp_params
from repro.sim.engine import Simulator


class FakeNetwork:
    """Captures every segment the connection emits."""

    def __init__(self):
        self.sent = []

    def send(self, dst, proto, segment, wire_bytes, ecn=0, dst_is_cloud=False):
        self.sent.append(segment)

    def pop(self):
        seg = self.sent[-1]
        return seg

    def clear(self):
        self.sent = []


class FakePacket:
    src = 2
    ecn = 0


def make_conn(params=None, **kw):
    sim = Simulator()
    net = FakeNetwork()
    conn = TcpConnection(
        sim, net, local_id=1, local_port=1000, peer_id=2, peer_port=2000,
        params=params or tcplp_params(), iss=5000, **kw,
    )
    return sim, net, conn


def establish(sim, net, conn, peer_iss=9000, peer_mss=448, peer_window=4096):
    conn.connect()
    syn = net.pop()
    assert syn.syn and not syn.ack_flag
    synack = Segment(
        src_port=2000, dst_port=1000, seq=peer_iss,
        ack=(syn.seq + 1) & 0xFFFFFFFF, flags=FLAG_SYN | FLAG_ACK,
        window=peer_window,
        options=TcpOptions(mss=peer_mss, sack_permitted=True,
                           ts_val=1, ts_ecr=syn.options.ts_val),
    )
    conn.on_segment(synack, FakePacket())
    return syn


class TestHandshake:
    def test_syn_carries_options(self):
        sim, net, conn = make_conn()
        conn.connect()
        syn = net.pop()
        assert syn.options.mss == conn.params.mss
        assert syn.options.sack_permitted
        assert syn.options.has_timestamps
        assert syn.window == conn.params.recv_buffer

    def test_mss_negotiated_to_minimum(self):
        sim, net, conn = make_conn()
        establish(sim, net, conn, peer_mss=300)
        assert conn.mss == 300
        assert conn.state is TcpState.ESTABLISHED

    def test_final_ack_of_handshake(self):
        sim, net, conn = make_conn()
        establish(sim, net, conn)
        ack = net.pop()
        assert ack.ack_flag and not ack.syn
        assert ack.ack == 9001

    def test_features_disabled_if_peer_lacks_them(self):
        sim, net, conn = make_conn()
        conn.connect()
        syn = net.pop()
        synack = Segment(
            src_port=2000, dst_port=1000, seq=9000, ack=syn.seq + 1,
            flags=FLAG_SYN | FLAG_ACK, window=4096,
            options=TcpOptions(mss=448),  # no SACK, no timestamps
        )
        conn.on_segment(synack, FakePacket())
        assert not conn.sack_enabled
        assert not conn.ts_enabled

    def test_simultaneous_open(self):
        sim, net, conn = make_conn()
        conn.connect()
        # a bare SYN (not SYN-ACK) crosses ours
        syn = Segment(src_port=2000, dst_port=1000, seq=9000,
                      flags=FLAG_SYN, window=4096,
                      options=TcpOptions(mss=448))
        conn.on_segment(syn, FakePacket())
        assert conn.state is TcpState.SYN_RECEIVED
        reply = net.pop()
        assert reply.syn and reply.ack_flag
        # peer's ACK completes the open
        ack = Segment(src_port=2000, dst_port=1000, seq=9001,
                      ack=conn.snd_nxt, flags=FLAG_ACK, window=4096)
        conn.on_segment(ack, FakePacket())
        assert conn.state is TcpState.ESTABLISHED

    def test_ack_of_wrong_seq_in_syn_sent_gets_rst(self):
        sim, net, conn = make_conn()
        conn.connect()
        bogus = Segment(src_port=2000, dst_port=1000, seq=9000,
                        ack=123456, flags=FLAG_SYN | FLAG_ACK, window=100)
        conn.on_segment(bogus, FakePacket())
        assert net.pop().rst
        assert conn.state is TcpState.SYN_SENT


class TestWindowRules:
    def test_window_update_needs_newer_segment(self):
        sim, net, conn = make_conn()
        establish(sim, net, conn)
        conn.snd_wnd = 4096
        # an OLD segment (seq < snd_wl1) must not shrink the window
        old = Segment(src_port=2000, dst_port=1000, seq=9000,
                      ack=conn.snd_una, flags=FLAG_ACK, window=1)
        conn.snd_wl1 = 9001
        conn.on_segment(old, FakePacket())
        assert conn.snd_wnd == 4096

    def test_send_respects_peer_window(self):
        sim, net, conn = make_conn()
        establish(sim, net, conn, peer_window=500)
        net.clear()
        conn.send(b"z" * 1500)
        sent = sum(len(s.data) for s in net.sent)
        assert sent <= 500

    def test_zero_window_starts_persist(self):
        sim, net, conn = make_conn()
        establish(sim, net, conn, peer_window=0)
        conn.send(b"z" * 100)
        assert conn.persist_timer.armed
        net.clear()
        sim.run(until=conn.persist_timer.expiry + 0.01)
        probe = net.pop()
        assert len(probe.data) == 1  # one-byte window probe

    def test_persist_interval_backs_off(self):
        sim, net, conn = make_conn()
        establish(sim, net, conn, peer_window=0)
        conn.send(b"z" * 100)
        first = conn.persist_timer.expiry - sim.now
        sim.run(until=conn.persist_timer.expiry + 0.01)
        second = conn.persist_timer.expiry - sim.now
        assert second > first

    def test_persist_backoff_resets_across_episodes(self):
        # A stale _persist_shift must not leak into the next
        # zero-window episode: after the window reopens via a normal
        # inbound ACK (no probe ever answered), a fresh episode's first
        # probe fires at persist_min again, not at 2^shift backoff.
        sim, net, conn = make_conn()
        establish(sim, net, conn, peer_window=0)
        conn.send(b"z" * 100)
        assert conn.persist_timer.armed
        first = conn.persist_timer.expiry - sim.now

        # episode 1: several unanswered probes grow the backoff shift
        for _ in range(5):
            sim.run(until=conn.persist_timer.expiry + 0.001)
        assert conn._persist_shift >= 5
        probes_ep1 = conn.trace.counters.get("tcp.zero_window_probes")
        assert probes_ep1 == 5

        # the window reopens via a plain window-update ACK
        reopen = Segment(src_port=2000, dst_port=1000, seq=conn.rcv_nxt,
                         ack=conn.snd_una, flags=FLAG_ACK, window=4096)
        conn.on_segment(reopen, FakePacket())
        assert conn._persist_shift == 0
        assert not conn.persist_timer.armed

        # drain: the peer acks everything outstanding
        net.clear()
        sim.run(until=sim.now + 1.0)
        ack_all = Segment(src_port=2000, dst_port=1000, seq=conn.rcv_nxt,
                          ack=conn.snd_max, flags=FLAG_ACK, window=4096)
        conn.on_segment(ack_all, FakePacket())
        assert conn.flight_size() == 0

        # episode 2: the window slams shut again
        close = Segment(src_port=2000, dst_port=1000, seq=conn.rcv_nxt,
                        ack=conn.snd_max, flags=FLAG_ACK, window=0)
        conn.on_segment(close, FakePacket())
        conn.send(b"y" * 100)
        assert conn.persist_timer.armed
        second = conn.persist_timer.expiry - sim.now
        assert abs(second - first) < 1e-9
        assert abs(second - conn.params.persist_min) < 1e-9

        # and its first probe still counts in the shared counter
        net.clear()
        sim.run(until=conn.persist_timer.expiry + 0.001)
        probe = net.pop()
        assert len(probe.data) == 1
        assert conn.trace.counters.get("tcp.zero_window_probes") \
            == probes_ep1 + 1


class TestTimestampEcho:
    def test_echo_reflects_peer_tsval(self):
        sim, net, conn = make_conn()
        establish(sim, net, conn)
        data = Segment(src_port=2000, dst_port=1000, seq=9001,
                       ack=conn.snd_nxt, flags=FLAG_ACK | FLAG_PSH,
                       window=4096, data=b"ping",
                       options=TcpOptions(ts_val=777, ts_ecr=0))
        net.clear()
        conn.on_segment(data, FakePacket())
        sim.run(until=1.0)  # let the delayed ACK fire
        ack = net.pop()
        assert ack.options.ts_ecr == 777

    def test_old_segment_does_not_regress_tsrecent(self):
        sim, net, conn = make_conn()
        establish(sim, net, conn)
        for ts, seq, payload in ((100, 9001, b"a"), (200, 9002, b"b")):
            seg = Segment(src_port=2000, dst_port=1000, seq=seq,
                          ack=conn.snd_nxt, flags=FLAG_ACK, window=4096,
                          data=payload, options=TcpOptions(ts_val=ts, ts_ecr=0))
            conn.on_segment(seg, FakePacket())
        assert conn.ts_recent == 200


class TestDelayedAck:
    def test_single_segment_ack_is_delayed(self):
        sim, net, conn = make_conn()
        establish(sim, net, conn)
        net.clear()
        seg = Segment(src_port=2000, dst_port=1000, seq=9001,
                      ack=conn.snd_nxt, flags=FLAG_ACK, window=4096,
                      data=b"1" * 100, options=TcpOptions(ts_val=5, ts_ecr=0))
        conn.on_data = lambda d: None
        conn.on_segment(seg, FakePacket())
        assert net.sent == []  # no immediate ACK
        sim.run(until=conn.params.delayed_ack_timeout + 0.01)
        assert net.pop().ack_flag

    def test_second_segment_acks_immediately(self):
        sim, net, conn = make_conn()
        establish(sim, net, conn)
        conn.on_data = lambda d: None
        net.clear()
        for i, seq in enumerate((9001, 9101)):
            seg = Segment(src_port=2000, dst_port=1000, seq=seq,
                          ack=conn.snd_nxt, flags=FLAG_ACK, window=4096,
                          data=b"x" * 100,
                          options=TcpOptions(ts_val=5 + i, ts_ecr=0))
            conn.on_segment(seg, FakePacket())
        # the second in-order segment forces the ACK out at once
        assert any(s.ack == 9201 for s in net.sent)

    def test_out_of_order_acks_immediately_with_sack(self):
        sim, net, conn = make_conn()
        establish(sim, net, conn)
        conn.on_data = lambda d: None
        net.clear()
        ooo = Segment(src_port=2000, dst_port=1000, seq=9201,
                      ack=conn.snd_nxt, flags=FLAG_ACK, window=4096,
                      data=b"x" * 100, options=TcpOptions(ts_val=5, ts_ecr=0))
        conn.on_segment(ooo, FakePacket())
        dup = net.pop()
        assert dup.ack == 9001  # duplicate ACK at the hole
        assert dup.options.sack_blocks == [(9201, 9301)]


class TestRetransmitEngine:
    def test_rto_backoff_doubles(self):
        sim, net, conn = make_conn()
        establish(sim, net, conn)
        conn.send(b"d" * 100)
        first_expiry = conn.rexmt_timer.expiry
        sim.run(until=first_expiry + 0.01)
        second_gap = conn.rexmt_timer.expiry - sim.now
        assert second_gap > (first_expiry - 0) * 1.5

    def test_gives_up_after_max_retransmits(self):
        params = tcplp_params()
        params.max_retransmits = 3
        params.rto_max = 2.0
        sim, net, conn = make_conn(params=params)
        establish(sim, net, conn)
        errors = []
        conn.on_error = errors.append
        conn.send(b"d" * 100)
        sim.run(until=60.0)
        assert errors == ["connection timed out (data)"]
        assert conn.state is TcpState.CLOSED

    def test_retransmission_resends_head(self):
        sim, net, conn = make_conn()
        establish(sim, net, conn)
        conn.send(b"d" * 100)
        first = net.pop()
        sim.run(until=conn.rexmt_timer.expiry + 0.01)
        retx = net.pop()
        assert retx.seq == first.seq
        assert retx.data == first.data
