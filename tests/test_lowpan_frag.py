"""Fragmentation and reassembly behaviour."""

import pytest

from repro.lowpan.frag import (
    FRAG1_HEADER_BYTES,
    FRAGN_HEADER_BYTES,
    Fragmenter,
    Reassembler,
)
from repro.sim.engine import Simulator


def test_small_datagram_is_unfragmented():
    f = Fragmenter(node_id=1)
    frags = f.fragment("pkt", 104, final_dst=9)
    assert len(frags) == 1
    assert not frags[0].fragmented
    assert frags[0].wire_bytes == 104
    assert frags[0].packet == "pkt"


def test_large_datagram_fragments_with_8_byte_alignment():
    f = Fragmenter(node_id=1)
    frags = f.fragment("pkt", 400, final_dst=9)
    assert len(frags) == f.frames_for(400)
    assert frags[0].is_first and frags[0].packet == "pkt"
    assert all(not g.is_first and g.packet is None for g in frags[1:])
    # all non-final fragments 8-byte aligned
    for g in frags[:-1]:
        assert g.length % 8 == 0
    # offsets contiguous and total length correct
    offset = 0
    for g in frags:
        assert g.offset == offset
        offset += g.length
    assert offset == 400


def test_fragment_wire_bytes_include_headers():
    f = Fragmenter(node_id=1)
    frags = f.fragment("pkt", 400, final_dst=9)
    assert frags[0].wire_bytes == FRAG1_HEADER_BYTES + frags[0].length
    assert frags[1].wire_bytes == FRAGN_HEADER_BYTES + frags[1].length
    # every fragment fits a MAC payload
    assert all(g.wire_bytes <= 104 for g in frags)


def test_five_frame_segment_sizing():
    # The paper's MSS=5-frames configuration: a datagram of ~480 B
    # should need exactly 5 frames.
    f = Fragmenter(node_id=1)
    per_first, per_next = f.max_first_payload(), f.max_next_payload()
    size = per_first + 3 * per_next + 10
    assert f.frames_for(size) == 5


def test_tags_increment_per_datagram():
    f = Fragmenter(node_id=1)
    a = f.fragment("a", 300, final_dst=9)
    b = f.fragment("b", 300, final_dst=9)
    assert a[0].tag != b[0].tag


def test_reassembly_in_order():
    sim = Simulator()
    r = Reassembler(sim)
    f = Fragmenter(node_id=1)
    frags = f.fragment("pkt", 500, final_dst=9)
    results = [r.add(g) for g in frags]
    assert results[:-1] == [None] * (len(frags) - 1)
    assert results[-1] == "pkt"
    assert r.pending() == 0


def test_reassembly_out_of_order():
    sim = Simulator()
    r = Reassembler(sim)
    f = Fragmenter(node_id=1)
    frags = f.fragment("pkt", 500, final_dst=9)
    reordered = frags[::-1]
    results = [r.add(g) for g in reordered]
    assert results[-1] == "pkt"


def test_duplicate_fragment_ignored():
    sim = Simulator()
    r = Reassembler(sim)
    f = Fragmenter(node_id=1)
    frags = f.fragment("pkt", 300, final_dst=9)
    assert r.add(frags[0]) is None
    assert r.add(frags[0]) is None  # duplicate
    assert r.trace.counters.get("lowpan.duplicate_fragments") == 1


def test_reassembly_timeout_discards_partial():
    sim = Simulator()
    r = Reassembler(sim, timeout=2.0)
    f = Fragmenter(node_id=1)
    frags = f.fragment("pkt", 500, final_dst=9)
    r.add(frags[0])
    assert r.pending() == 1
    sim.run(until=3.0)
    assert r.pending() == 0
    assert r.trace.counters.get("lowpan.reassembly_timeouts") == 1
    # late fragment starts a new (incomplete) buffer rather than crashing
    assert r.add(frags[1]) is None


def test_reassembly_buffer_bound():
    sim = Simulator()
    r = Reassembler(sim, max_buffers=2)
    f = Fragmenter(node_id=1)
    for i in range(3):
        frags = f.fragment(f"p{i}", 300, final_dst=9)
        r.add(frags[0])
    assert r.pending() == 2
    assert r.trace.counters.get("lowpan.reassembly_overflow") == 1


def test_interleaved_datagrams_reassemble_independently():
    sim = Simulator()
    r = Reassembler(sim)
    fa = Fragmenter(node_id=1)
    fb = Fragmenter(node_id=2)
    a = fa.fragment("a", 300, final_dst=9)
    b = fb.fragment("b", 300, final_dst=9)
    out = []
    for ga, gb in zip(a, b):
        out.append(r.add(ga))
        out.append(r.add(gb))
    assert "a" in out and "b" in out


def test_fragment_rejects_empty():
    f = Fragmenter(node_id=1)
    with pytest.raises(ValueError):
        f.fragment("pkt", 0, final_dst=9)
