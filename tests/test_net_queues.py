"""Drop-tail and RED queues with ECN marking."""

import pytest

from repro.net.ipv6 import ECN_CE, ECN_ECT0, ECN_NOT_ECT, Ipv6Packet, PROTO_TCP
from repro.net.queues import DropTailQueue, RedParams, RedQueue
from repro.sim.rng import RngStreams


def pkt(ecn=ECN_NOT_ECT):
    return Ipv6Packet(src=1, dst=2, next_header=PROTO_TCP, payload=None,
                      payload_bytes=100, ecn=ecn)


class TestDropTail:
    def test_fifo_order(self):
        q = DropTailQueue(4)
        a, b = pkt(), pkt()
        q.enqueue(a)
        q.enqueue(b)
        assert q.dequeue() is a
        assert q.dequeue() is b
        assert q.dequeue() is None

    def test_drops_when_full(self):
        q = DropTailQueue(2)
        assert q.enqueue(pkt()) == "enqueue"
        assert q.enqueue(pkt()) == "enqueue"
        assert q.enqueue(pkt()) == "drop"
        assert q.drops == 1
        assert len(q) == 2

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            DropTailQueue(0)


class TestRed:
    def make(self, **kw):
        defaults = dict(min_th=2.0, max_th=6.0, max_p=0.5, wq=1.0,
                        capacity=10, use_ecn=True)
        defaults.update(kw)
        return RedQueue(RedParams(**defaults), RngStreams(3))

    def test_below_min_th_always_enqueues(self):
        q = self.make()
        for _ in range(2):
            assert q.enqueue(pkt()) == "enqueue"
        assert q.drops == 0 and q.marks == 0

    def test_above_max_th_marks_ect_packets(self):
        q = self.make()
        # fill past max_th (wq=1 makes avg track the instantaneous size)
        outcomes = [q.enqueue(pkt(ECN_ECT0)) for _ in range(9)]
        assert "mark" in outcomes
        marked = [p for p in q._queue if p.ecn == ECN_CE]
        assert marked, "a CE-marked packet should be in the queue"

    def test_above_max_th_drops_not_ect(self):
        q = self.make()
        outcomes = [q.enqueue(pkt(ECN_NOT_ECT)) for _ in range(9)]
        assert "drop" in outcomes
        assert q.drops >= 1

    def test_ecn_disabled_drops_instead_of_marking(self):
        q = self.make(use_ecn=False)
        outcomes = [q.enqueue(pkt(ECN_ECT0)) for _ in range(9)]
        assert "mark" not in outcomes
        assert q.drops >= 1

    def test_hard_capacity_enforced(self):
        q = self.make(min_th=100, max_th=200, capacity=3)
        outcomes = [q.enqueue(pkt()) for _ in range(5)]
        assert outcomes.count("enqueue") == 3
        assert outcomes.count("drop") == 2

    def test_avg_is_ewma(self):
        q = self.make(wq=0.5)
        q.enqueue(pkt())
        assert q.avg == pytest.approx(0.0)  # measured before enqueue
        q.enqueue(pkt())
        assert q.avg == pytest.approx(0.5)

    def test_probabilistic_region_marks_sometimes(self):
        q = self.make(min_th=1, max_th=100, max_p=0.5, wq=1.0, capacity=100)
        outcomes = [q.enqueue(pkt(ECN_ECT0)) for _ in range(50)]
        assert outcomes.count("mark") >= 1
        assert outcomes.count("enqueue") >= 1
