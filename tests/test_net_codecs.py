"""Byte codecs and address mapping: IPv6, UDP, addresses, wired link."""

import ipaddress

import pytest

from repro.net import addr
from repro.net.ipv6 import (
    ECN_CE,
    ECN_ECT0,
    IPV6_HEADER_BYTES,
    Ipv6Packet,
    PROTO_TCP,
    PROTO_UDP,
    decode_header,
)
from repro.net.udp import UDP_HEADER_BYTES, UdpDatagram, decode_header as udp_decode
from repro.net.wired import WiredLink
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams


class TestAddresses:
    def test_mesh_address_round_trip(self):
        a = addr.mesh_address(42)
        assert addr.is_mesh(a)
        assert addr.node_id_of(a) == 42

    def test_cloud_address_round_trip(self):
        a = addr.cloud_address(7)
        assert not addr.is_mesh(a)
        assert addr.node_id_of(a) == 7

    def test_prefixes_distinct(self):
        assert addr.mesh_address(1) != addr.cloud_address(1)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            addr.mesh_address(2**16)
        with pytest.raises(ValueError):
            addr.node_id_of(ipaddress.IPv6Address("2001:4860::1"))


class TestIpv6Codec:
    def test_header_is_40_bytes(self):
        pkt = Ipv6Packet(src=1, dst=2, next_header=PROTO_TCP,
                         payload=None, payload_bytes=100)
        assert len(pkt.encode_header()) == IPV6_HEADER_BYTES

    def test_round_trip(self):
        pkt = Ipv6Packet(src=3, dst=1000, next_header=PROTO_UDP,
                         payload=None, payload_bytes=77, hop_limit=9,
                         ecn=ECN_CE, dst_is_cloud=True)
        parsed = decode_header(pkt.encode_header())
        assert (parsed.src, parsed.dst) == (3, 1000)
        assert parsed.next_header == PROTO_UDP
        assert parsed.payload_bytes == 77
        assert parsed.hop_limit == 9
        assert parsed.ecn == ECN_CE
        assert parsed.dst_is_cloud and not parsed.src_is_cloud

    def test_decode_rejects_garbage(self):
        with pytest.raises(ValueError):
            decode_header(b"\x00" * 10)
        with pytest.raises(ValueError):
            decode_header(b"\x40" + b"\x00" * 39)  # version 4

    def test_compressed_smaller_than_full(self):
        pkt = Ipv6Packet(src=1, dst=2, next_header=PROTO_TCP,
                         payload=None, payload_bytes=0)
        assert pkt.compressed_header_bytes() < IPV6_HEADER_BYTES
        assert pkt.datagram_bytes() == pkt.compressed_header_bytes()

    def test_cloud_destination_costs_more_header(self):
        mesh = Ipv6Packet(src=1, dst=2, next_header=PROTO_TCP,
                          payload=None, payload_bytes=0)
        cloud = Ipv6Packet(src=1, dst=1000, next_header=PROTO_TCP,
                           payload=None, payload_bytes=0, dst_is_cloud=True)
        assert cloud.compressed_header_bytes() == (
            mesh.compressed_header_bytes() + 16
        )

    def test_ecn_makes_header_grow(self):
        plain = Ipv6Packet(src=1, dst=2, next_header=PROTO_TCP,
                           payload=None, payload_bytes=0)
        marked = Ipv6Packet(src=1, dst=2, next_header=PROTO_TCP,
                            payload=None, payload_bytes=0, ecn=ECN_ECT0)
        assert marked.compressed_header_bytes() == (
            plain.compressed_header_bytes() + 1
        )


class TestUdpCodec:
    def test_header_is_8_bytes(self):
        d = UdpDatagram(1000, 2000, b"x", 1)
        assert len(d.encode_header()) == UDP_HEADER_BYTES

    def test_round_trip(self):
        d = UdpDatagram(5683, 49152, b"hello", 5)
        src, dst, length = udp_decode(d.encode_header())
        assert (src, dst) == (5683, 49152)
        assert length == UDP_HEADER_BYTES + 5

    def test_compressed_wire_bytes_smaller(self):
        d = UdpDatagram(0xF0B1, 0xF0B2, b"x" * 10, 10)
        assert d.wire_bytes(compressed=True) < d.wire_bytes(compressed=False)

    def test_decode_rejects_short(self):
        with pytest.raises(ValueError):
            udp_decode(b"\x00\x01")


class TestWiredLink:
    def make(self, **kw):
        sim = Simulator()
        return sim, WiredLink(sim, RngStreams(1), **kw)

    def packet(self):
        return Ipv6Packet(src=1, dst=1000, next_header=PROTO_TCP,
                          payload=None, payload_bytes=10, dst_is_cloud=True)

    def test_delivery_after_delay(self):
        sim, link = self.make(one_way_delay=0.006)
        got = []
        link.connect(1000, lambda p: got.append(sim.now))
        link.send(self.packet(), toward=1000)
        sim.run()
        assert got == [0.006]

    def test_unknown_endpoint_rejected(self):
        sim, link = self.make()
        with pytest.raises(ValueError):
            link.send(self.packet(), toward=5)

    def test_directional_loss_to_cloud_only(self):
        sim, link = self.make(loss_rate=1.0 - 1e-12,
                              loss_direction="to_cloud")
        link.cloud_ids.add(1000)
        got = []
        link.connect(1000, lambda p: got.append("cloud"))
        link.connect(1, lambda p: got.append("mesh"))
        link.send(self.packet(), toward=1000)  # dropped
        link.send(self.packet(), toward=1)  # delivered
        sim.run()
        assert got == ["mesh"]
        assert link.packets_dropped == 1

    def test_bad_direction_rejected(self):
        sim, link = self.make(loss_rate=0.5, loss_direction="sideways")
        link.connect(1000, lambda p: None)
        with pytest.raises(ValueError):
            link.send(self.packet(), toward=1000)
