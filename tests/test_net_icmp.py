"""ICMPv6 echo across the simulated mesh."""

import pytest

from repro.experiments.topology import CLOUD_ID, build_chain, build_pair
from repro.net.icmpv6 import (
    IcmpEcho,
    IcmpStack,
    TYPE_ECHO_REQUEST,
)


def test_codec_round_trip():
    echo = IcmpEcho(TYPE_ECHO_REQUEST, identifier=7, sequence=3,
                    payload_bytes=16)
    parsed = IcmpEcho.decode(echo.encode())
    assert parsed.icmp_type == TYPE_ECHO_REQUEST
    assert (parsed.identifier, parsed.sequence) == (7, 3)
    assert parsed.payload_bytes == 16
    assert len(echo.encode()) == echo.wire_bytes


def test_codec_rejects_garbage():
    with pytest.raises(ValueError):
        IcmpEcho.decode(b"\x00")
    with pytest.raises(ValueError):
        IcmpEcho.decode(bytes([3, 0, 0, 0, 0, 0, 0, 0]))


def test_ping_one_hop():
    net = build_pair(seed=40)
    a = IcmpStack(net.sim, net.nodes[0].ipv6)
    IcmpStack(net.sim, net.nodes[1].ipv6)
    rtts = []
    a.ping(1, rtts.append)
    net.sim.run(until=2.0)
    assert len(rtts) == 1
    assert rtts[0] is not None
    assert 0.001 < rtts[0] < 0.2


def test_ping_rtt_grows_with_hops():
    def ping_over(hops):
        net = build_chain(hops, seed=41, with_cloud=False)
        src = IcmpStack(net.sim, net.nodes[hops].ipv6)
        IcmpStack(net.sim, net.nodes[0].ipv6)
        rtts = []
        src.ping(0, rtts.append)
        net.sim.run(until=5.0)
        assert rtts and rtts[0] is not None
        return rtts[0]

    assert ping_over(3) > 2 * ping_over(1)


def test_ping_cloud_through_border_router():
    net = build_chain(2, seed=42)
    mote = IcmpStack(net.sim, net.nodes[2].ipv6)
    IcmpStack(net.sim, net.cloud)
    rtts = []
    mote.ping(CLOUD_ID, rtts.append, dst_is_cloud=True)
    net.sim.run(until=5.0)
    assert rtts and rtts[0] is not None
    assert rtts[0] > 0.012  # at least the wired RTT


def test_ping_timeout_on_dead_target():
    net = build_pair(seed=43)
    a = IcmpStack(net.sim, net.nodes[0].ipv6)
    IcmpStack(net.sim, net.nodes[1].ipv6)
    net.medium.block_link(0, 1)
    rtts = []
    a.ping(1, rtts.append, timeout=2.0)
    net.sim.run(until=5.0)
    assert rtts == [None]
    assert a.trace.counters.get("icmp.echo_timeouts") == 1


def test_concurrent_pings_matched_by_identifier():
    net = build_pair(seed=44)
    a = IcmpStack(net.sim, net.nodes[0].ipv6)
    IcmpStack(net.sim, net.nodes[1].ipv6)
    results = {}
    a.ping(1, lambda rtt: results.setdefault("first", rtt))
    a.ping(1, lambda rtt: results.setdefault("second", rtt),
           payload_bytes=64)
    net.sim.run(until=3.0)
    assert set(results) == {"first", "second"}
    assert all(v is not None for v in results.values())
