"""Tests for tools/triage.py: ddmin, schedule minimization, and the
reproduce → minimize → replay-from-checkpoint pipeline.

The pipeline test uses the tool's deterministic ``--corrupt`` hook (a
schedule-independent ``snd_nxt`` smash), so ddmin must reduce the
fault list to empty and the checkpoint replay must reproduce the
identical first violation.
"""

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))

import triage  # noqa: E402


# ======================================================================
# ddmin
# ======================================================================
class TestDdmin:
    def test_finds_minimal_pair(self):
        calls = []

        def fails(subset):
            calls.append(list(subset))
            return {3, 7} <= set(subset)

        assert triage.ddmin(list(range(10)), fails) == [3, 7]

    def test_finds_single_culprit(self):
        assert triage.ddmin(list(range(8)),
                            lambda s: 5 in s) == [5]

    def test_empty_input_and_empty_failure(self):
        assert triage.ddmin([], lambda s: True) == []
        # failure independent of the items -> minimized to nothing
        assert triage.ddmin([1, 2, 3], lambda s: True) == []

    def test_result_is_one_minimal(self):
        def fails(subset):
            return {1, 4, 6} <= set(subset)

        result = triage.ddmin(list(range(8)), fails)
        assert result == [1, 4, 6]
        for i in range(len(result)):
            assert not fails(result[:i] + result[i + 1:])


class TestMinimizeSchedule:
    def test_reduces_to_the_culpable_fault(self):
        spec = {"name": "trio", "faults": [
            {"kind": "bursty_loss", "p_good_bad": 0.1, "p_bad_good": 0.5},
            {"kind": "frame_corruption", "rate": 0.01},
            {"kind": "node_reboot", "node": 1, "at": 5.0, "outage": 1.0},
        ]}

        def fails_with(candidate):
            return any(f["kind"] == "frame_corruption"
                       for f in candidate["faults"])

        minimized = triage.minimize_schedule(spec, fails_with)
        assert [f["kind"] for f in minimized["faults"]] == \
            ["frame_corruption"]
        assert minimized["name"] == "trio-minimized"
        assert len(spec["faults"]) == 3  # input spec untouched


# ======================================================================
# Full pipeline (CLI) with the deterministic corruption hook
# ======================================================================
def test_cli_triages_seeded_corruption_end_to_end(tmp_path):
    report_path = tmp_path / "report.json"
    spec_path = tmp_path / "minimized.json"
    rc = triage.main([
        "--corrupt", "6.0", "--duration", "12",
        "-o", str(report_path), "--minimized-out", str(spec_path),
    ])
    assert rc == triage.EXIT_VIOLATION
    report = json.loads(report_path.read_text())
    assert report["clean"] is False
    first = report["violations"][0]
    assert first["time"] >= 6.0 and "snd_una" in first["detail"]
    # the corruption is schedule-independent -> minimized to no faults
    assert report["minimized_schedule"]["faults"] == []
    assert json.loads(spec_path.read_text())["faults"] == []
    # replay from the checkpoint before t=6 reproduces the violation
    replay = report["replay"]
    assert replay["replayed"] is True
    assert replay["checkpoint_time"] == 5.0
    assert replay["violations_reproduced"] >= 1
    assert replay["matches_original"] is True


def test_cli_clean_run_exits_zero(tmp_path):
    report_path = tmp_path / "clean.json"
    rc = triage.main(["--duration", "6", "-o", str(report_path)])
    assert rc == 0
    report = json.loads(report_path.read_text())
    assert report["clean"] is True and report["violations"] == []
