"""CoAP: codec, confirmable retransmission, blockwise, server dedup."""

import pytest

from repro.app.coap import (
    CODE_CHANGED,
    CODE_POST,
    CoapClient,
    CoapMessage,
    CoapParams,
    CoapServer,
    CoapType,
)
from repro.experiments.topology import CLOUD_ID, build_chain


class TestCodec:
    def test_round_trip_con_post(self):
        msg = CoapMessage(CoapType.CON, CODE_POST, message_id=42, token=7,
                          payload=b"data", block=(3, True, 6))
        parsed = CoapMessage.decode(msg.encode())
        assert parsed.mtype is CoapType.CON
        assert parsed.code == CODE_POST
        assert parsed.message_id == 42
        assert parsed.token == 7
        assert parsed.payload == b"data"
        assert parsed.block == (3, True, 6)

    def test_round_trip_ack(self):
        msg = CoapMessage(CoapType.ACK, CODE_CHANGED, message_id=9, token=3)
        parsed = CoapMessage.decode(msg.encode())
        assert parsed.mtype is CoapType.ACK
        assert parsed.payload == b""
        assert parsed.block is None

    def test_wire_bytes_matches_encoding(self):
        msg = CoapMessage(CoapType.CON, CODE_POST, 1, 1, b"xyz", (0, False, 6))
        assert len(msg.encode()) == msg.wire_bytes

    def test_decode_rejects_garbage(self):
        with pytest.raises(ValueError):
            CoapMessage.decode(b"\x00\x00")
        with pytest.raises(ValueError):
            CoapMessage.decode(b"\xff\x00\x00\x00")  # bad version


def make_coap_net(wired_loss=0.0, seed=0, estimator=None,
                  params=None, loss_direction="both"):
    net = build_chain(1, seed=seed, wired_loss=wired_loss)
    net.wired.loss_direction = loss_direction
    server = CoapServer(net.sim, net.cloud)
    payloads = []
    server.on_payload = lambda p, pkt: payloads.append(p)
    client = CoapClient(net.sim, net.nodes[1].udp, net.rng, CLOUD_ID,
                        params=params, rto_estimator=estimator)
    return net, server, client, payloads


def test_confirmable_post_delivers_and_acks():
    net, server, client, payloads = make_coap_net()
    results = []
    client.post(b"hello", on_result=results.append)
    net.sim.run(until=5.0)
    assert payloads == [b"hello"]
    assert results == [True]


def test_nonconfirmable_fire_and_forget():
    net, server, client, payloads = make_coap_net()
    results = []
    client.post(b"unreliable", confirmable=False, on_result=results.append)
    assert results == [True]  # completes immediately
    net.sim.run(until=2.0)
    assert payloads == [b"unreliable"]
    assert client.trace.counters.get("coap.retransmissions") == 0


def test_retransmission_recovers_lost_request():
    net, server, client, payloads = make_coap_net(wired_loss=0.45, seed=3)
    results = []
    client.post(b"x", on_result=results.append)
    net.sim.run(until=60.0)
    assert results == [True]
    assert client.trace.counters.get("coap.retransmissions") >= 1


def test_gives_up_after_max_retransmit():
    net, server, client, payloads = make_coap_net(
        wired_loss=1.0 - 1e-12, params=CoapParams(ack_timeout=0.5)
    )
    results = []
    client.post(b"x", on_result=results.append)
    net.sim.run(until=60.0)
    assert results == [False]
    assert client.trace.counters.get("coap.give_ups") == 1
    # 1 initial + MAX_RETRANSMIT copies
    assert client.trace.counters.get("coap.messages_sent") == 5


def test_nstart_one_serialises_exchanges():
    net, server, client, payloads = make_coap_net()
    order = []
    client.post(b"a", on_result=lambda ok: order.append("a"))
    client.post(b"b", on_result=lambda ok: order.append("b"))
    assert client.pending() == 2
    net.sim.run(until=10.0)
    assert order == ["a", "b"]
    assert payloads == [b"a", b"b"]


def test_server_dedups_retransmitted_request():
    # drop the first ACK (to_mesh) so the client retransmits; the server
    # must not double-count the payload
    net, server, client, payloads = make_coap_net(
        seed=9, params=CoapParams(ack_timeout=0.5)
    )

    class DropFirstToMesh:
        def __init__(self):
            self.dropped = False

        def apply(self, wired):
            orig = wired.send

            def send(packet, toward):
                if toward != CLOUD_ID and not self.dropped:
                    self.dropped = True
                    wired.packets_dropped += 1
                    return
                orig(packet, toward)

            wired.send = send

    DropFirstToMesh().apply(net.wired)
    results = []
    client.post(b"once", on_result=results.append)
    net.sim.run(until=30.0)
    assert results == [True]
    assert payloads == [b"once"]
    assert server.trace.counters.get("coap.duplicates") >= 1


def test_ack_waiting_callback_toggles():
    net = build_chain(1, seed=0)
    server = CoapServer(net.sim, net.cloud)
    states = []
    client = CoapClient(net.sim, net.nodes[1].udp, net.rng, CLOUD_ID,
                        on_ack_waiting=states.append)
    client.post(b"p")
    assert states == [True]
    net.sim.run(until=5.0)
    assert states[-1] is False
