"""Medium behaviour: range, delivery, collisions, hidden terminals."""

import pytest

from repro.mac.frame import Frame, FrameKind
from repro.phy.medium import Medium, UniformLoss
from repro.phy.radio import Radio
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams


def make_net(positions, comm_range=10.0, seed=1):
    sim = Simulator()
    medium = Medium(sim, rng=RngStreams(seed), comm_range=comm_range)
    radios = [
        Radio(sim, medium, node_id=i, position=pos)
        for i, pos in enumerate(positions)
    ]
    return sim, medium, radios


def frame(src, dst, nbytes=50):
    return Frame(
        kind=FrameKind.DATA, src=src, dst=dst, payload=b"x", payload_bytes=nbytes
    )


def test_in_range_and_neighbors():
    _, medium, _ = make_net([(0, 0), (5, 0), (20, 0)])
    assert medium.in_range(0, 1)
    assert not medium.in_range(0, 2)
    assert medium.neighbors(1) == [0]
    assert medium.neighbors(0) == [1]


def test_forced_and_blocked_links():
    _, medium, _ = make_net([(0, 0), (5, 0), (20, 0)])
    medium.force_link(0, 2)
    assert medium.in_range(0, 2) and medium.in_range(2, 0)
    medium.block_link(0, 1)
    assert not medium.in_range(0, 1)


def test_clean_delivery():
    sim, medium, radios = make_net([(0, 0), (5, 0)])
    got = []
    radios[1].on_frame = lambda f, s: got.append((f, s))
    radios[0].transmit(frame(0, 1), 73, on_done=lambda: None)
    sim.run()
    assert len(got) == 1
    assert got[0][1] == 0
    assert medium.frames_delivered == 1


def test_out_of_range_no_delivery():
    sim, medium, radios = make_net([(0, 0), (50, 0)])
    got = []
    radios[1].on_frame = lambda f, s: got.append(f)
    radios[0].transmit(frame(0, 1), 73, on_done=lambda: None)
    sim.run()
    assert got == []


def test_sleeping_radio_misses_frame():
    sim, medium, radios = make_net([(0, 0), (5, 0)])
    got = []
    radios[1].on_frame = lambda f, s: got.append(f)
    radios[1].sleep()
    radios[0].transmit(frame(0, 1), 73, on_done=lambda: None)
    sim.run()
    assert got == []


def test_radio_waking_mid_frame_misses_it():
    sim, medium, radios = make_net([(0, 0), (5, 0)])
    got = []
    radios[1].on_frame = lambda f, s: got.append(f)
    radios[1].sleep()
    radios[0].transmit(frame(0, 1), 127, on_done=lambda: None)
    # wake 1 ms into the ~8.2 ms transmission (during air time)
    sim.schedule(0.0050, radios[1].listen)
    sim.run()
    assert got == []


def test_hidden_terminal_collision():
    # 0 and 2 cannot hear each other; both can reach 1 (the middle).
    sim, medium, radios = make_net([(0, 0), (8, 0), (16, 0)])
    got = []
    radios[1].on_frame = lambda f, s: got.append(s)
    radios[0].transmit(frame(0, 1), 100, on_done=lambda: None)
    # 2 starts while 0's frame is in the air; neither carrier-senses the other
    assert not medium.carrier_busy(2) or True
    sim.schedule(0.001, lambda: radios[2].transmit(frame(2, 1), 100, lambda: None))
    sim.run()
    assert got == []  # both corrupted at node 1
    assert medium.frames_collided == 2


def test_non_overlapping_frames_both_delivered():
    sim, medium, radios = make_net([(0, 0), (8, 0), (16, 0)])
    got = []
    radios[1].on_frame = lambda f, s: got.append(s)
    radios[0].transmit(frame(0, 1), 50, on_done=lambda: None)
    sim.schedule(0.05, lambda: radios[2].transmit(frame(2, 1), 50, lambda: None))
    sim.run()
    assert sorted(got) == [0, 2]


def test_carrier_busy_during_air_phase():
    sim, medium, radios = make_net([(0, 0), (5, 0)])
    radios[0].transmit(frame(0, 1), 127, on_done=lambda: None)
    # during the SPI phase, the channel is still idle
    assert not medium.carrier_busy(1)
    seen = []
    # by mid-transmission the air phase is active
    sim.schedule(0.0060, lambda: seen.append(medium.carrier_busy(1)))
    sim.run()
    assert seen == [True]
    assert not medium.carrier_busy(1)


def test_half_duplex_transmitter_cannot_receive():
    sim, medium, radios = make_net([(0, 0), (5, 0)])
    got = []
    radios[0].on_frame = lambda f, s: got.append(f)
    radios[0].transmit(frame(0, 1), 127, on_done=lambda: None)
    sim.schedule(0.0001, lambda: radios[1].transmit(frame(1, 0), 127, lambda: None))
    sim.run()
    assert got == []  # node 0 was transmitting


def test_uniform_loss_drops_roughly_at_rate():
    sim, medium, radios = make_net([(0, 0), (5, 0)])
    rng = RngStreams(7)
    medium.loss_models.append(UniformLoss(0.5, rng))
    got = []
    radios[1].on_frame = lambda f, s: got.append(f)

    def send(n):
        if n == 0:
            return
        radios[0].transmit(frame(0, 1), 30, on_done=lambda: send(n - 1))

    send(200)
    sim.run()
    assert 60 < len(got) < 140  # ~100 expected


def test_uniform_loss_link_scoped():
    rng = RngStreams(7)
    loss = UniformLoss(1.0 - 1e-9, rng, link=(3, 4))
    assert not loss(1, 2, 0.0)
    assert loss(3, 4, 0.0)


def test_uniform_loss_validates_rate():
    with pytest.raises(ValueError):
        UniformLoss(1.5, RngStreams(0))
    with pytest.raises(ValueError):
        UniformLoss(-0.01, RngStreams(0))


def test_uniform_loss_accepts_closed_interval_boundaries():
    """rate is valid on the closed [0, 1]: 1.0 drops every frame,
    0.0 drops none (regression: 1.0 used to be rejected)."""
    always = UniformLoss(1.0, RngStreams(0))
    never = UniformLoss(0.0, RngStreams(0))
    assert all(always(0, 1, 0.0) for _ in range(50))
    assert not any(never(0, 1, 0.0) for _ in range(50))


def test_duplicate_registration_rejected():
    sim = Simulator()
    medium = Medium(sim)
    Radio(sim, medium, node_id=1, position=(0, 0))
    with pytest.raises(ValueError):
        Radio(sim, medium, node_id=1, position=(1, 1))


def test_oversized_frame_rejected():
    sim, medium, radios = make_net([(0, 0), (5, 0)])
    with pytest.raises(ValueError):
        radios[0].transmit(frame(0, 1), 200, on_done=lambda: None)
