"""Medium behaviour: range, delivery, collisions, hidden terminals."""

import pytest

from repro.mac.frame import Frame, FrameKind
from repro.phy.medium import Medium, UniformLoss
from repro.phy.radio import Radio
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams


def make_net(positions, comm_range=10.0, seed=1):
    sim = Simulator()
    medium = Medium(sim, rng=RngStreams(seed), comm_range=comm_range)
    radios = [
        Radio(sim, medium, node_id=i, position=pos)
        for i, pos in enumerate(positions)
    ]
    return sim, medium, radios


def frame(src, dst, nbytes=50):
    return Frame(
        kind=FrameKind.DATA, src=src, dst=dst, payload=b"x", payload_bytes=nbytes
    )


def test_in_range_and_neighbors():
    _, medium, _ = make_net([(0, 0), (5, 0), (20, 0)])
    assert medium.in_range(0, 1)
    assert not medium.in_range(0, 2)
    assert medium.neighbors(1) == [0]
    assert medium.neighbors(0) == [1]


def test_forced_and_blocked_links():
    _, medium, _ = make_net([(0, 0), (5, 0), (20, 0)])
    medium.force_link(0, 2)
    assert medium.in_range(0, 2) and medium.in_range(2, 0)
    medium.block_link(0, 1)
    assert not medium.in_range(0, 1)


def test_clean_delivery():
    sim, medium, radios = make_net([(0, 0), (5, 0)])
    got = []
    radios[1].on_frame = lambda f, s: got.append((f, s))
    radios[0].transmit(frame(0, 1), 73, on_done=lambda: None)
    sim.run()
    assert len(got) == 1
    assert got[0][1] == 0
    assert medium.frames_delivered == 1


def test_out_of_range_no_delivery():
    sim, medium, radios = make_net([(0, 0), (50, 0)])
    got = []
    radios[1].on_frame = lambda f, s: got.append(f)
    radios[0].transmit(frame(0, 1), 73, on_done=lambda: None)
    sim.run()
    assert got == []


def test_sleeping_radio_misses_frame():
    sim, medium, radios = make_net([(0, 0), (5, 0)])
    got = []
    radios[1].on_frame = lambda f, s: got.append(f)
    radios[1].sleep()
    radios[0].transmit(frame(0, 1), 73, on_done=lambda: None)
    sim.run()
    assert got == []


def test_radio_waking_mid_frame_misses_it():
    sim, medium, radios = make_net([(0, 0), (5, 0)])
    got = []
    radios[1].on_frame = lambda f, s: got.append(f)
    radios[1].sleep()
    radios[0].transmit(frame(0, 1), 127, on_done=lambda: None)
    # wake 1 ms into the ~8.2 ms transmission (during air time)
    sim.schedule(0.0050, radios[1].listen)
    sim.run()
    assert got == []


def test_hidden_terminal_collision():
    # 0 and 2 cannot hear each other; both can reach 1 (the middle).
    sim, medium, radios = make_net([(0, 0), (8, 0), (16, 0)])
    got = []
    radios[1].on_frame = lambda f, s: got.append(s)
    radios[0].transmit(frame(0, 1), 100, on_done=lambda: None)
    # 2 starts while 0's frame is in the air; neither carrier-senses the other
    assert not medium.carrier_busy(2) or True
    sim.schedule(0.001, lambda: radios[2].transmit(frame(2, 1), 100, lambda: None))
    sim.run()
    assert got == []  # both corrupted at node 1
    assert medium.frames_collided == 2


def test_non_overlapping_frames_both_delivered():
    sim, medium, radios = make_net([(0, 0), (8, 0), (16, 0)])
    got = []
    radios[1].on_frame = lambda f, s: got.append(s)
    radios[0].transmit(frame(0, 1), 50, on_done=lambda: None)
    sim.schedule(0.05, lambda: radios[2].transmit(frame(2, 1), 50, lambda: None))
    sim.run()
    assert sorted(got) == [0, 2]


def test_carrier_busy_during_air_phase():
    sim, medium, radios = make_net([(0, 0), (5, 0)])
    radios[0].transmit(frame(0, 1), 127, on_done=lambda: None)
    # during the SPI phase, the channel is still idle
    assert not medium.carrier_busy(1)
    seen = []
    # by mid-transmission the air phase is active
    sim.schedule(0.0060, lambda: seen.append(medium.carrier_busy(1)))
    sim.run()
    assert seen == [True]
    assert not medium.carrier_busy(1)


def test_half_duplex_transmitter_cannot_receive():
    sim, medium, radios = make_net([(0, 0), (5, 0)])
    got = []
    radios[0].on_frame = lambda f, s: got.append(f)
    radios[0].transmit(frame(0, 1), 127, on_done=lambda: None)
    sim.schedule(0.0001, lambda: radios[1].transmit(frame(1, 0), 127, lambda: None))
    sim.run()
    assert got == []  # node 0 was transmitting


def test_uniform_loss_drops_roughly_at_rate():
    sim, medium, radios = make_net([(0, 0), (5, 0)])
    rng = RngStreams(7)
    medium.loss_models.append(UniformLoss(0.5, rng))
    got = []
    radios[1].on_frame = lambda f, s: got.append(f)

    def send(n):
        if n == 0:
            return
        radios[0].transmit(frame(0, 1), 30, on_done=lambda: send(n - 1))

    send(200)
    sim.run()
    assert 60 < len(got) < 140  # ~100 expected


def test_uniform_loss_link_scoped():
    rng = RngStreams(7)
    loss = UniformLoss(1.0 - 1e-9, rng, link=(3, 4))
    assert not loss(1, 2, 0.0)
    assert loss(3, 4, 0.0)


def test_uniform_loss_validates_rate():
    with pytest.raises(ValueError):
        UniformLoss(1.5, RngStreams(0))
    with pytest.raises(ValueError):
        UniformLoss(-0.01, RngStreams(0))


def test_uniform_loss_accepts_closed_interval_boundaries():
    """rate is valid on the closed [0, 1]: 1.0 drops every frame,
    0.0 drops none (regression: 1.0 used to be rejected)."""
    always = UniformLoss(1.0, RngStreams(0))
    never = UniformLoss(0.0, RngStreams(0))
    assert all(always(0, 1, 0.0) for _ in range(50))
    assert not any(never(0, 1, 0.0) for _ in range(50))


def test_duplicate_registration_rejected():
    sim = Simulator()
    medium = Medium(sim)
    Radio(sim, medium, node_id=1, position=(0, 0))
    with pytest.raises(ValueError):
        Radio(sim, medium, node_id=1, position=(1, 1))


def test_oversized_frame_rejected():
    sim, medium, radios = make_net([(0, 0), (5, 0)])
    with pytest.raises(ValueError):
        radios[0].transmit(frame(0, 1), 200, on_done=lambda: None)


# ----------------------------------------------------------------------
# spatial index: grid-bucketed adjacency must equal the pairwise sweep
# ----------------------------------------------------------------------
def _random_positions(n, side, seed):
    rng = RngStreams(seed)
    return [(rng.uniform("pos", 0.0, side), rng.uniform("pos", 0.0, side))
            for _ in range(n)]


def _build_both(positions, comm_range=10.0, mutate=None):
    """The same topology through the spatial-index and brute paths."""
    mediums = []
    for use_spatial in (True, False):
        sim = Simulator()
        medium = Medium(sim, rng=RngStreams(1), comm_range=comm_range,
                        use_spatial_index=use_spatial)
        for i, pos in enumerate(positions):
            Radio(sim, medium, node_id=i, position=pos)
        if mutate is not None:
            mutate(medium)
        mediums.append(medium)
    return mediums


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_spatial_index_matches_brute_force_random(seed):
    positions = _random_positions(80, side=60.0, seed=seed)
    grid, brute = _build_both(positions)
    assert grid.neighbor_sets == brute.neighbor_sets
    for node in range(80):
        assert grid.neighbors(node) == brute.neighbors(node)


def test_spatial_index_matches_with_forced_and_blocked_links():
    positions = _random_positions(50, side=45.0, seed=7)

    def mutate(medium):
        medium.force_link(0, 49)      # out-of-range pair, forced on
        medium.block_link(1, 2)
        # a pair that is both forced and blocked: blocked wins
        medium.force_link(5, 6)
        medium.block_link(5, 6)

    grid, brute = _build_both(positions, mutate=mutate)
    assert grid.neighbor_sets == brute.neighbor_sets
    assert grid.in_range(0, 49) and grid.in_range(49, 0)
    assert not grid.in_range(5, 6)


def test_spatial_index_forced_id_without_radio():
    # A forced link may name an id with no registered radio (the wired
    # cloud pattern); the grid path answers in_range() truthfully for
    # it.  Grid-only: the brute-force sweep predates this and raises
    # KeyError looking up a position for the unregistered id.
    sim = Simulator()
    medium = Medium(sim, rng=RngStreams(3), comm_range=10.0)
    for i in range(4):
        Radio(sim, medium, node_id=i, position=(3.0 * i, 0.0))
    medium.force_link(3, 1000)
    assert medium.in_range(3, 1000) and medium.in_range(1000, 3)
    assert not medium.in_range(2, 1000)
    assert 1000 in medium.neighbor_sets[3]


def test_spatial_index_boundary_distance_exact():
    # nodes exactly comm_range apart are in range on both paths
    positions = [(0.0, 0.0), (10.0, 0.0), (10.0 + 1e-9, 10.0)]
    grid, brute = _build_both(positions, comm_range=10.0)
    assert grid.neighbor_sets == brute.neighbor_sets
    assert grid.in_range(0, 1)


def test_spatial_index_cross_cell_neighbors():
    # in range but in different grid cells (straddling a cell border)
    positions = [(9.9, 0.0), (10.1, 0.0), (19.0, 9.5), (-0.5, -0.5)]
    grid, brute = _build_both(positions, comm_range=10.0)
    assert grid.neighbor_sets == brute.neighbor_sets


def test_spatial_index_invalidated_on_register():
    sim = Simulator()
    medium = Medium(sim, rng=RngStreams(1), comm_range=10.0)
    Radio(sim, medium, node_id=0, position=(0.0, 0.0))
    Radio(sim, medium, node_id=1, position=(5.0, 0.0))
    assert medium.neighbor_sets[0] == {1}
    rebuilds = medium.cache_rebuilds
    Radio(sim, medium, node_id=2, position=(0.0, 5.0))
    assert medium.neighbor_sets[0] == {1, 2}
    assert medium.cache_rebuilds == rebuilds + 1
