"""Unit tests for counters, series recorders, and percentile."""

import pytest

from repro.sim.trace import Counter, SeriesRecorder, TraceRecorder, percentile


def test_counter_increments():
    c = Counter()
    c.incr("a")
    c.incr("a", 4)
    assert c.get("a") == 5
    assert c.get("missing") == 0
    assert c.as_dict() == {"a": 5}


def test_counter_rejects_negative():
    c = Counter()
    with pytest.raises(ValueError):
        c.incr("a", -1)


def test_series_basic():
    s = SeriesRecorder("cwnd")
    s.record(0.0, 1.0)
    s.record(1.0, 3.0)
    assert len(s) == 2
    assert s.last() == 3.0
    assert s.mean() == 2.0
    assert s.window(0.5, 1.5) == [(1.0, 3.0)]


def test_series_rejects_time_travel():
    s = SeriesRecorder()
    s.record(1.0, 1.0)
    with pytest.raises(ValueError):
        s.record(0.5, 2.0)


def test_time_weighted_mean_step_function():
    s = SeriesRecorder()
    s.record(0.0, 0.0)
    s.record(1.0, 10.0)
    # value is 0 on [0,1), 10 on [1,2): mean over [0,2] is 5
    assert s.time_weighted_mean(2.0) == pytest.approx(5.0)


def test_trace_recorder_series_identity():
    tr = TraceRecorder()
    s1 = tr.series("x")
    s2 = tr.series("x")
    assert s1 is s2
    assert tr.has_series("x")
    assert not tr.has_series("y")


def test_percentile_median():
    assert percentile([1, 2, 3, 4, 5], 50) == 3
    assert percentile([1, 2, 3, 4], 50) == 2.5
    assert percentile([7], 90) == 7


def test_percentile_bounds():
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1], 150)


def test_rng_streams_deterministic_and_independent():
    from repro.sim.rng import RngStreams

    a1 = RngStreams(42)
    a2 = RngStreams(42)
    xs1 = [a1.random("csma") for _ in range(5)]
    xs2 = [a2.random("csma") for _ in range(5)]
    assert xs1 == xs2
    # consuming a different stream does not perturb the first
    b = RngStreams(42)
    b.random("other")
    ys = [b.random("csma") for _ in range(5)]
    assert ys == xs1
    assert 0 <= b.randint("i", 0, 7) <= 7
    assert 1.0 <= b.uniform("u", 1.0, 2.0) <= 2.0
