"""Advanced MAC behaviours: preemption, pause, indirect overflow, deaf CSMA."""

from repro.mac.frame import FrameKind
from repro.mac.link import MacLayer, MacParams
from repro.phy.energy import RadioState
from repro.phy.medium import Medium
from repro.phy.radio import Radio
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams


def make_macs(positions, params=None, seed=3, deaf=False):
    sim = Simulator()
    rng = RngStreams(seed)
    medium = Medium(sim, rng=rng, comm_range=10.0)
    macs = []
    for i, pos in enumerate(positions):
        radio = Radio(sim, medium, node_id=i, position=pos, deaf_csma=deaf)
        macs.append(MacLayer(sim, radio, rng, params=params or MacParams()))
    return sim, medium, macs


def test_indirect_release_preempts_contending_op():
    """§9.5 improvement 1: a waiting indirect frame preempts the direct
    frame still contending for the channel."""
    params = MacParams(retry_delay=0.2)  # long retry waits to preempt in
    sim, medium, macs = make_macs([(0, 0), (5, 0), (0, 5)], params=params)
    parent = macs[0]
    parent.mark_sleepy_child(1)
    order = []
    macs[1].on_receive = lambda p, s, f: order.append(("child", p))
    macs[2].on_receive = lambda p, s, f: order.append(("router", p))
    # park a frame for the sleepy child, then start a big direct backlog
    parent.send(b"indirect", 30, dst=1)
    for i in range(5):
        parent.send(i, 100, dst=2)
    # the child polls while the parent is mid-backlog
    sim.schedule(0.02, lambda: macs[1].send_data_request(parent=0))
    sim.run(until=3.0)
    assert ("child", b"indirect") in order
    child_at = order.index(("child", b"indirect"))
    # the indirect frame beat most of the backlog
    assert child_at <= 2
    assert parent.trace.counters.get("mac.preemptions") >= 0  # accounted


def test_pause_holds_all_transmissions():
    sim, medium, macs = make_macs([(0, 0), (5, 0)])
    got = []
    macs[1].on_receive = lambda p, s, f: got.append(sim.now)
    macs[0].paused = True
    macs[0].send(b"held", 20, dst=1)
    sim.run(until=1.0)
    assert got == []
    macs[0].paused = False
    macs[0]._kick()
    sim.run(until=2.0)
    assert len(got) == 1 and got[0] > 1.0


def test_indirect_queue_overflow_drops():
    params = MacParams(indirect_queue_limit=2)
    sim, medium, macs = make_macs([(0, 0), (5, 0)], params=params)
    parent = macs[0]
    parent.mark_sleepy_child(1)
    results = []
    for i in range(4):
        parent.send(i, 20, dst=1, on_done=results.append)
    assert parent.indirect_depth(1) == 2
    assert results.count(False) == 2
    assert parent.trace.counters.get("mac.indirect_drops") == 2


def test_deaf_csma_radio_goes_deaf_during_backoff():
    sim, medium, macs = make_macs([(0, 0), (5, 0)], deaf=True)
    states = []
    # sample radio state right after the send begins (during backoff)
    macs[0].send(b"x", 50, dst=1)

    def probe():
        states.append(macs[0].radio.state)

    # SPI load takes ~2.3 ms; backoff follows
    sim.schedule(0.0028, probe)
    sim.run(until=1.0)
    assert RadioState.DEAF in states


def test_failed_indirect_frame_requeues_for_next_poll():
    params = MacParams(indirect_max_retries=1, ack_wait=0.002)
    sim, medium, macs = make_macs([(0, 0), (5, 0)], params=params)
    parent, child = macs[0], macs[1]
    parent.mark_sleepy_child(1)
    got = []
    child.on_receive = lambda p, s, f: got.append(p)
    parent.send(b"retryme", 20, dst=1)
    # first poll: child immediately sleeps, so the data frame dies
    child.send_data_request(parent=0)

    def deafen():
        child.radio.sleep()

    sim.schedule(0.012, deafen)  # right after the poll exchange
    sim.run(until=1.0)
    if not got:
        # frame failed and went back to the indirect queue
        assert parent.indirect_depth(1) == 1
        child.radio.listen()
        child.send_data_request(parent=0)
        sim.run(until=2.0)
    assert got == [b"retryme"]


def test_data_request_jumps_send_queue():
    sim, medium, macs = make_macs([(0, 0), (5, 0)])
    kinds = []
    orig = macs[0].radio.transmit_loaded

    def spy(frame, nbytes, cb, *args):
        kinds.append(frame.kind)
        orig(frame, nbytes, cb, *args)

    macs[0].radio.transmit_loaded = spy
    for i in range(3):
        macs[0].send(i, 80, dst=1)
    macs[0].send_data_request(parent=1)
    sim.run(until=2.0)
    # the data request went out before at least the queue's tail
    first_request = kinds.index(FrameKind.DATA_REQUEST)
    assert first_request <= 2
