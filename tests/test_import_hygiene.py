"""Import-hygiene lint: downstream code goes through ``repro.api``.

Everything the facade re-exports must be imported *from* the facade (or
from ``repro`` itself) in the example scripts, the experiment modules,
and the perf scenarios — otherwise the compatibility surface quietly
erodes back into deep imports.  Deep paths that the facade does not
cover (MAC/PHY internals, app-layer helpers, trace plumbing) remain
fair game; only the modules whose public names moved behind
``repro.api`` are banned.

Implemented as an AST walk so string mentions in comments/docstrings
don't trip it.
"""

import ast
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

#: modules whose public names are covered by the facade — downstream
#: code must not import from them directly
BANNED_MODULES = {
    # the kernel tiers are selected via Simulator(accel=...)/
    # make_simulator, never by constructing FastSimulator directly
    "repro.sim.fastcore",
    "repro.core.socket_api",
    "repro.core.params",
    "repro.core.simplified",
    "repro.core.connection",
    "repro.experiments.topology",
    "repro.experiments.workload",
}

SCANNED_FILES = sorted(
    list((REPO_ROOT / "examples").glob("*.py"))
    + list((REPO_ROOT / "src" / "repro" / "experiments").glob("exp_*.py"))
    + [REPO_ROOT / "benchmarks" / "perf" / "scenarios.py"]
)


def _banned_imports(path: Path):
    tree = ast.parse(path.read_text(), filename=str(path))
    hits = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name in BANNED_MODULES:
                    hits.append(f"line {node.lineno}: import {alias.name}")
        elif isinstance(node, ast.ImportFrom):
            if node.module in BANNED_MODULES:
                hits.append(f"line {node.lineno}: from {node.module} "
                            f"import ...")
    return hits


def test_scan_list_is_nonempty():
    assert len(SCANNED_FILES) >= 10, SCANNED_FILES


@pytest.mark.parametrize("path", SCANNED_FILES,
                         ids=[str(p.relative_to(REPO_ROOT))
                              for p in SCANNED_FILES])
def test_no_deep_imports_of_facade_covered_modules(path):
    hits = _banned_imports(path)
    assert not hits, (
        f"{path.relative_to(REPO_ROOT)} bypasses repro.api:\n  "
        + "\n  ".join(hits)
        + "\nimport these names from repro.api instead"
    )
