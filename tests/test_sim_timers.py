"""Unit tests for restartable timers."""

from repro.sim.engine import Simulator
from repro.sim.timers import Timer


def test_timer_fires_once():
    sim = Simulator()
    fired = []
    t = Timer(sim, lambda: fired.append(sim.now))
    t.start(1.5)
    sim.run()
    assert fired == [1.5]
    assert not t.armed


def test_timer_restart_supersedes():
    sim = Simulator()
    fired = []
    t = Timer(sim, lambda: fired.append(sim.now))
    t.start(1.0)
    t.start(2.0)  # restart pushes expiry out
    sim.run()
    assert fired == [2.0]


def test_timer_stop():
    sim = Simulator()
    fired = []
    t = Timer(sim, lambda: fired.append(sim.now))
    t.start(1.0)
    t.stop()
    sim.run()
    assert fired == []


def test_start_if_idle_does_not_restart():
    sim = Simulator()
    fired = []
    t = Timer(sim, lambda: fired.append(sim.now))
    t.start(1.0)
    t.start_if_idle(5.0)
    sim.run()
    assert fired == [1.0]


def test_remaining_and_expiry():
    sim = Simulator()
    t = Timer(sim, lambda: None)
    assert t.remaining() == 0.0
    assert t.expiry is None
    t.start(2.0)
    assert t.remaining() == 2.0
    assert t.expiry == 2.0


def test_timer_rearm_from_callback():
    sim = Simulator()
    fired = []
    t = Timer(sim, lambda: None)

    def cb():
        fired.append(sim.now)
        if len(fired) < 3:
            t.start(1.0)

    t.callback = cb
    t.start(1.0)
    sim.run()
    assert fired == [1.0, 2.0, 3.0]
