"""Link-layer behaviour: delivery, ACKs, retries, dedup, hidden terminals."""

from repro.mac.link import MacLayer, MacParams
from repro.phy.medium import Medium
from repro.phy.radio import Radio
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams


def make_macs(positions, comm_range=10.0, seed=3, params=None, deaf=False):
    sim = Simulator()
    rng = RngStreams(seed)
    medium = Medium(sim, rng=rng, comm_range=comm_range)
    macs = []
    for i, pos in enumerate(positions):
        radio = Radio(sim, medium, node_id=i, position=pos, deaf_csma=deaf)
        macs.append(MacLayer(sim, radio, rng, params=params or MacParams()))
    return sim, medium, macs


def test_unicast_delivery_and_ack():
    sim, medium, macs = make_macs([(0, 0), (5, 0)])
    got = []
    done = []
    macs[1].on_receive = lambda p, s, f: got.append((p, s))
    macs[0].send(b"hello", 5, dst=1, on_done=done.append)
    sim.run()
    assert got == [(b"hello", 0)]
    assert done == [True]
    assert macs[0].trace.counters.get("mac.tx_success") == 1


def test_queue_serialises_frames_in_order():
    sim, medium, macs = make_macs([(0, 0), (5, 0)])
    got = []
    macs[1].on_receive = lambda p, s, f: got.append(p)
    for i in range(5):
        macs[0].send(i, 50, dst=1)
    sim.run()
    assert got == [0, 1, 2, 3, 4]


def test_tail_drop_beyond_queue_limit():
    params = MacParams(tx_queue_limit=2)
    sim, medium, macs = make_macs([(0, 0), (5, 0)], params=params)
    results = []
    for i in range(5):
        macs[0].send(i, 50, dst=1, on_done=results.append)
    # 1 in flight + 2 queued accepted; but the first send may already be
    # in flight when the rest arrive, so at least one drop occurs
    assert macs[0].trace.counters.get("mac.tail_drops") >= 1
    sim.run()
    assert results.count(False) == macs[0].trace.counters.get("mac.tail_drops")


def test_retry_on_lost_frame_succeeds():
    sim, medium, macs = make_macs([(0, 0), (5, 0)])
    # drop the first data frame copy; the retry gets through
    class OneShotLoss:
        def __init__(self):
            self.dropped = False
        def __call__(self, s, r, now):
            if not self.dropped and r == 1:
                self.dropped = True
                return True
            return False
    medium.loss_models.append(OneShotLoss())
    got = []
    macs[1].on_receive = lambda p, s, f: got.append(p)
    done = []
    macs[0].send(b"x", 20, dst=1, on_done=done.append)
    sim.run()
    assert got == [b"x"]
    assert done == [True]
    assert macs[0].trace.counters.get("mac.link_retries") >= 1


def test_permanent_loss_exhausts_retries():
    params = MacParams(max_retries=3)
    sim, medium, macs = make_macs([(0, 0), (5, 0)], params=params)
    medium.loss_models.append(lambda s, r, now: r == 1)  # child never hears
    done = []
    macs[0].send(b"x", 20, dst=1, on_done=done.append)
    sim.run()
    assert done == [False]
    assert macs[0].trace.counters.get("mac.tx_failures") == 1


def test_duplicate_suppression_when_ack_lost():
    sim, medium, macs = make_macs([(0, 0), (5, 0)])
    # drop ACKs (frames toward node 0) once
    class AckLoss:
        def __init__(self):
            self.count = 0
        def __call__(self, s, r, now):
            if r == 0 and self.count < 1:
                self.count += 1
                return True
            return False
    medium.loss_models.append(AckLoss())
    got = []
    macs[1].on_receive = lambda p, s, f: got.append(p)
    macs[0].send(b"x", 20, dst=1)
    sim.run()
    assert got == [b"x"]  # delivered exactly once despite retransmission
    assert macs[1].trace.counters.get("mac.duplicates") >= 1


def test_broadcast_no_ack_no_retry():
    from repro.mac.frame import BROADCAST
    sim, medium, macs = make_macs([(0, 0), (5, 0), (5, 5)])
    got = []
    macs[1].on_receive = lambda p, s, f: got.append((1, p))
    macs[2].on_receive = lambda p, s, f: got.append((2, p))
    done = []
    macs[0].send(b"b", 20, dst=BROADCAST, on_done=done.append)
    sim.run()
    assert sorted(got) == [(1, b"b"), (2, b"b")]
    assert done == [True]
    assert macs[0].trace.counters.get("mac.ack_timeouts") == 0


def test_hidden_terminal_losses_reduced_by_retry_delay():
    """§7.1: a random inter-retry delay defuses hidden-terminal collisions."""
    def run(delay):
        params = MacParams(retry_delay=delay, max_retries=7)
        sim, medium, macs = make_macs(
            [(0, 0), (8, 0), (16, 0)], params=params, seed=11
        )
        got = []
        macs[1].on_receive = lambda p, s, f: got.append(p)
        n = 40
        fails = []

        def send_from(mac, idx, left):
            if left == 0:
                return
            mac.send((idx, left), 100, dst=1,
                     on_done=lambda ok: (fails.append(ok), send_from(mac, idx, left - 1)))

        send_from(macs[0], 0, n)
        send_from(macs[2], 2, n)
        sim.run()
        return len(got), fails.count(False)

    delivered_d0, failed_d0 = run(0.0)
    delivered_d40, failed_d40 = run(0.04)
    assert delivered_d40 >= delivered_d0
    assert failed_d40 <= failed_d0


def test_csma_defers_to_busy_channel():
    # Node 2 transmits a long frame; node 0's CSMA should defer, so both
    # frames are delivered to node 1 without collision.
    sim, medium, macs = make_macs([(0, 0), (5, 0), (5, 5)])
    got = []
    macs[1].on_receive = lambda p, s, f: got.append(p)
    macs[2].send(b"long", 100, dst=1)
    sim.schedule(0.0095, lambda: macs[0].send(b"short", 20, dst=1))
    sim.run()
    assert sorted(got) == [b"long", b"short"]


def test_sleepy_child_indirect_queue():
    sim, medium, macs = make_macs([(0, 0), (5, 0)])
    parent, child_mac = macs[0], macs[1]
    parent.mark_sleepy_child(1)
    got = []
    child_mac.on_receive = lambda p, s, f: got.append(p)
    parent.send(b"down", 30, dst=1)
    # frame parks on the indirect queue; nothing transmits yet
    sim.run(until=1.0)
    assert got == []
    assert parent.indirect_depth(1) == 1
    # child polls; the parent releases the queue
    child_mac.send_data_request(parent=0)
    sim.run(until=2.0)
    assert got == [b"down"]
    assert parent.indirect_depth(1) == 0


def test_poll_ack_carries_pending_bit():
    sim, medium, macs = make_macs([(0, 0), (5, 0)])
    parent, child = macs[0], macs[1]
    parent.mark_sleepy_child(1)
    pendings = []
    child.on_poll_ack = pendings.append
    # empty queue: pending False
    child.send_data_request(parent=0)
    sim.run(until=0.5)
    assert pendings == [False]
    parent.send(b"d", 10, dst=1)
    child.send_data_request(parent=0)
    sim.run(until=1.0)
    assert pendings == [False, True]


def test_multiple_indirect_frames_drain_with_pending_bits():
    sim, medium, macs = make_macs([(0, 0), (5, 0)])
    parent, child = macs[0], macs[1]
    parent.mark_sleepy_child(1)
    got = []
    pendings = []
    child.on_receive = lambda p, s, f: got.append(p)
    child.on_data_pending = pendings.append
    for i in range(3):
        parent.send(i, 30, dst=1)
    child.send_data_request(parent=0)
    sim.run(until=2.0)
    assert got == [0, 1, 2]
    assert pendings == [True, True, False]
