"""Routing: static tables and the Thread-like mesh."""

import pytest

from repro.net.routing import MeshRouting, StaticRouting
from repro.phy.medium import Medium
from repro.phy.radio import Radio
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams


class TestStaticRouting:
    def test_path_installs_bidirectional_routes(self):
        r = StaticRouting()
        r.add_path([0, 1, 2, 3])
        assert r.next_hop(3, 0) == 2
        assert r.next_hop(0, 3) == 1
        assert r.next_hop(1, 3) == 2
        assert r.next_hop(2, 0) == 1

    def test_self_route_is_none(self):
        r = StaticRouting()
        r.add_path([0, 1])
        assert r.next_hop(0, 0) is None

    def test_unknown_destination_is_none(self):
        r = StaticRouting()
        r.add_path([0, 1])
        assert r.next_hop(0, 99) is None

    def test_set_route_overrides(self):
        r = StaticRouting()
        r.set_route(5, 9, 7)
        assert r.next_hop(5, 9) == 7


def make_medium(positions, comm_range=10.0):
    sim = Simulator()
    medium = Medium(sim, rng=RngStreams(0), comm_range=comm_range)
    for nid, pos in positions.items():
        Radio(sim, medium, nid, pos)
    return medium


class TestMeshRouting:
    def test_line_of_routers(self):
        medium = make_medium({0: (0, 0), 1: (8, 0), 2: (16, 0)})
        routing = MeshRouting(border_id=0, router_ids=[0, 1, 2])
        routing.rebuild(medium)
        assert routing.next_hop(2, 0) == 1
        assert routing.next_hop(0, 2) == 1
        assert routing.hops_between(2, 0) == 2

    def test_leaf_routes_through_parent(self):
        medium = make_medium({0: (0, 0), 1: (8, 0), 10: (14, 0)})
        routing = MeshRouting.build(medium, border_id=0, router_ids=[0, 1],
                                    leaf_ids=[10])
        assert routing.parent_of(10) == 1
        assert routing.next_hop(10, 0) == 1
        # toward the leaf: hop to the parent first, then the leaf
        assert routing.next_hop(0, 10) == 1
        assert routing.next_hop(1, 10) == 10
        assert routing.attached_leaves(1) == [10]

    def test_off_mesh_destination_goes_to_border(self):
        medium = make_medium({0: (0, 0), 1: (8, 0)})
        routing = MeshRouting(border_id=0, router_ids=[0, 1])
        routing.rebuild(medium)
        assert routing.next_hop(1, 1000) == 0
        # the border resolves it itself (wired link)
        assert routing.next_hop(0, 1000) == 1000

    def test_leaf_picks_nearest_router(self):
        medium = make_medium({0: (0, 0), 1: (8, 0), 10: (9, 0)})
        routing = MeshRouting.build(medium, border_id=0, router_ids=[0, 1],
                                    leaf_ids=[10])
        assert routing.parent_of(10) == 1

    def test_isolated_leaf_rejected(self):
        medium = make_medium({0: (0, 0), 10: (50, 0)})
        with pytest.raises(ValueError):
            MeshRouting.build(medium, border_id=0, router_ids=[0],
                              leaf_ids=[10])

    def test_route_before_rebuild_raises(self):
        routing = MeshRouting(border_id=0, router_ids=[0, 1])
        with pytest.raises(RuntimeError):
            routing.next_hop(0, 1)

    def test_rebuild_after_topology_change(self):
        medium = make_medium({0: (0, 0), 1: (8, 0), 2: (16, 0)})
        routing = MeshRouting(border_id=0, router_ids=[0, 1, 2])
        routing.rebuild(medium)
        assert routing.next_hop(2, 0) == 1
        medium.force_link(0, 2)
        routing.rebuild(medium)
        assert routing.next_hop(2, 0) == 0  # direct now
