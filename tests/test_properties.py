"""Property-based tests (hypothesis) for core invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.buffers import ReceiveBuffer, SendBuffer
from repro.core.options import TcpOptions
from repro.core.segment import Segment
from repro.core.seqnum import (
    MOD,
    seq_add,
    seq_ge,
    seq_le,
    seq_lt,
    seq_max,
    seq_min,
    seq_sub,
)
from repro.core.sack import SackScoreboard
from repro.lowpan.frag import Fragmenter, Reassembler
from repro.mac.frame import Frame, FrameKind, decode_frame
from repro.sim.engine import Simulator

seqs = st.integers(min_value=0, max_value=MOD - 1)
small = st.integers(min_value=0, max_value=2**20)


class TestSeqnumProperties:
    @given(seqs, small)
    def test_add_sub_roundtrip(self, a, d):
        assert seq_sub(seq_add(a, d), a) == d

    @given(seqs, small)
    def test_ordering_consistent(self, a, d):
        b = seq_add(a, d)
        if d == 0:
            assert seq_le(a, b) and seq_ge(a, b)
        else:
            assert seq_lt(a, b)
            assert not seq_lt(b, a)

    @given(seqs, seqs)
    def test_min_max_partition(self, a, b):
        lo, hi = seq_min(a, b), seq_max(a, b)
        assert {lo, hi} == {a, b}
        assert seq_le(lo, hi)


class TestSendBufferProperties:
    @given(st.lists(st.binary(min_size=1, max_size=50), max_size=20))
    def test_fifo_byte_stream(self, chunks):
        """Whatever was accepted comes back out in order."""
        buf = SendBuffer(256)
        accepted = bytearray()
        for chunk in chunks:
            n = buf.write(chunk)
            accepted += chunk[:n]
        assert buf.peek(0, buf.used) == bytes(accepted[: buf.used])
        # drain and compare
        out = bytearray()
        while buf.used:
            take = min(7, buf.used)
            out += buf.peek(0, take)
            buf.ack(take)
        assert bytes(out) == bytes(accepted)

    @given(st.binary(max_size=600))
    def test_never_exceeds_capacity(self, data):
        buf = SendBuffer(100)
        buf.write(data)
        assert buf.used <= 100
        assert buf.used + buf.free == 100


@st.composite
def segments_with_gaps(draw):
    """A scattering of (offset, data) writes covering [0, n)."""
    n = draw(st.integers(min_value=1, max_value=60))
    payload = bytes(range(1, 1 + n % 255)) * (n // 255 + 1)
    payload = payload[:n].replace(b"\x00", b"\x01")
    pieces = []
    step = draw(st.integers(min_value=1, max_value=10))
    for start in range(0, n, step):
        pieces.append((start, payload[start : start + step]))
    order = draw(st.permutations(pieces))
    return n, payload, list(order)


class TestReceiveBufferProperties:
    @given(segments_with_gaps())
    @settings(max_examples=60)
    def test_any_arrival_order_reassembles(self, case):
        n, payload, pieces = case
        buf = ReceiveBuffer(64)
        advanced = 0
        for start, data in pieces:
            advanced += buf.write(start - advanced, data)
        assert advanced == n
        assert buf.read() == payload

    @given(segments_with_gaps())
    @settings(max_examples=60)
    def test_duplicates_are_harmless(self, case):
        n, payload, pieces = case
        buf = ReceiveBuffer(64)
        advanced = 0
        for start, data in pieces + pieces:
            rel = start - advanced
            if rel + len(data) <= 0:
                continue  # entirely consumed already
            advanced += buf.write(rel, data)
        assert advanced == n
        assert buf.read() == payload

    @given(st.integers(min_value=1, max_value=64),
           st.integers(min_value=0, max_value=80),
           st.binary(min_size=1, max_size=100))
    def test_window_invariant(self, cap, rel, data):
        buf = ReceiveBuffer(cap)
        buf.write(rel, data)
        assert 0 <= buf.window <= cap
        assert buf.available + buf.window == cap


class TestSackProperties:
    @given(st.lists(
        st.tuples(st.integers(0, 1000), st.integers(1, 50)), max_size=12
    ))
    def test_ranges_stay_disjoint_and_sorted(self, raw):
        sb = SackScoreboard()
        for left, length in raw:
            sb.update([(left, left + length)], snd_una=0)
        ranges = sb.ranges
        for (l1, r1), (l2, r2) in zip(ranges, ranges[1:]):
            assert r1 < l2  # disjoint with a gap (adjacent ranges merge)
        for lo, hi in ranges:
            assert lo < hi

    @given(st.lists(
        st.tuples(st.integers(0, 1000), st.integers(1, 50)), max_size=12
    ), st.integers(0, 1100))
    def test_advance_removes_everything_below(self, raw, una):
        sb = SackScoreboard()
        for left, length in raw:
            sb.update([(left, left + length)], snd_una=0)
        sb.advance(una)
        for lo, hi in sb.ranges:
            assert hi > una and lo >= una


class TestCodecProperties:
    @given(st.integers(0, 0xFFFF), st.integers(0, 0xFFFF),
           seqs, seqs, st.integers(0, 0xFFFF), st.binary(max_size=64))
    def test_tcp_segment_roundtrip(self, sp, dp, seq, ack, wnd, data):
        seg = Segment(src_port=sp, dst_port=dp, seq=seq, ack=ack,
                      flags=0x10, window=wnd, data=data)
        parsed = Segment.decode(seg.encode())
        assert (parsed.src_port, parsed.dst_port) == (sp, dp)
        assert (parsed.seq, parsed.ack) == (seq, ack)
        assert parsed.window == wnd
        assert parsed.data == data

    @given(st.booleans(), st.booleans(),
           st.one_of(st.none(), st.integers(1, 0xFFFF)),
           st.lists(st.tuples(seqs, seqs), max_size=3))
    def test_options_roundtrip(self, sack_perm, with_ts, mss, blocks):
        opts = TcpOptions(
            mss=mss,
            sack_permitted=sack_perm,
            ts_val=123 if with_ts else None,
            ts_ecr=45 if with_ts else None,
            sack_blocks=blocks,
        )
        parsed = TcpOptions.decode(opts.encode())
        assert parsed.mss == mss
        assert parsed.sack_permitted == sack_perm
        assert parsed.sack_blocks == blocks
        assert (parsed.ts_val is not None) == with_ts

    @given(st.integers(0, 0xFFFE), st.integers(0, 0xFFFE),
           st.integers(0, 255), st.booleans(), st.binary(max_size=80))
    def test_mac_frame_roundtrip(self, src, dst, seq, pending, payload):
        frame = Frame(kind=FrameKind.DATA, src=src, dst=dst, seq=seq,
                      pending=pending, payload_bytes=len(payload))
        parsed = decode_frame(frame.encode(payload))
        assert (parsed.src, parsed.dst, parsed.seq) == (src, dst, seq)
        assert parsed.pending == pending
        assert parsed.payload == payload


class TestFragmentationProperties:
    @given(st.integers(min_value=1, max_value=1280), st.integers(0, 2**30))
    def test_fragments_cover_exactly(self, size, _salt):
        frags = Fragmenter(node_id=1).fragment("pkt", size, final_dst=2)
        assert frags[0].offset == 0
        covered = 0
        for frag in frags:
            assert frag.offset == covered
            covered += frag.length
            assert frag.wire_bytes <= 104
        assert covered == size

    @given(st.integers(min_value=105, max_value=1280),
           st.randoms(use_true_random=False))
    def test_reassembly_in_any_order(self, size, rnd):
        sim = Simulator()
        frags = Fragmenter(node_id=1).fragment("pkt", size, final_dst=2)
        rnd.shuffle(frags)
        r = Reassembler(sim)
        outcomes = [r.add(f) for f in frags]
        assert outcomes.count("pkt") == 1


class TestEngineProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=100.0,
                              allow_nan=False), max_size=40))
    def test_events_fire_in_nondecreasing_time(self, delays):
        sim = Simulator()
        fired = []
        for d in delays:
            sim.schedule(d, lambda: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)
