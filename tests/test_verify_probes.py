"""Mutation tests for the live invariant engine (repro.verify).

Each test corrupts one piece of live state and asserts the matching
probe fires on an immediate ``check_now()`` — immediate because TCP
self-heals some corruptions (e.g. a smashed ``snd_nxt``) before the
next periodic sweep would see them.  A clean run stays silent.
"""

from types import SimpleNamespace

import pytest

from repro import verify
from repro.core.simplified import tcplp_params
from repro.core.socket_api import TcpStack
from repro.experiments.topology import build_pair
from repro.experiments.workload import BulkTransfer
from repro.sim.engine import Simulator
from repro.sim.timers import Timer
from repro.verify import InvariantEngine, check_no_armed_tcp_timers


def live_transfer(seed=5, run_until=4.0, **engine_kw):
    """A mid-flight one-hop bulk transfer with an engine attached."""
    net = build_pair(seed=seed)
    params = tcplp_params()
    n1, n0 = net.nodes[1], net.nodes[0]
    src = TcpStack(net.sim, n1.ipv6, 1, cpu=n1.radio.cpu)
    dst = TcpStack(net.sim, n0.ipv6, 0, cpu=n0.radio.cpu)
    xfer = BulkTransfer(net.sim, src, dst, receiver_id=0,
                        params=params, receiver_params=params)
    engine = InvariantEngine(net, **engine_kw).start()
    net.sim.run(until=run_until)
    assert xfer.connection is not None
    assert engine.ok, "baseline run must be clean before mutating"
    return net, xfer, engine


def details(violations):
    return [v.detail for v in violations]


def assert_fires(engine, fragment, layer=None):
    found = engine.check_now()
    matches = [v for v in found if fragment in v.detail]
    assert matches, (f"no violation matching {fragment!r} in "
                     f"{details(found)}")
    if layer is not None:
        assert matches[0].layer == layer
    return matches[0]


# ======================================================================
# Clean runs are silent
# ======================================================================
def test_clean_run_has_no_violations():
    net, xfer, engine = live_transfer(run_until=10.0)
    assert engine.ok
    assert engine.checks_run > 10  # the periodic sweep actually ran
    assert engine.first_violation() is None
    assert engine.summary() == {"checks_run": engine.checks_run,
                                "violations": []}


def test_stop_disarms_the_sweep():
    net, _xfer, engine = live_transfer(run_until=2.0)
    swept = engine.checks_run
    engine.stop()
    net.sim.run(until=4.0)
    assert engine.checks_run == swept


# ======================================================================
# TCP probes
# ======================================================================
def test_detects_snd_una_ahead_of_snd_nxt():
    _net, xfer, engine = live_transfer()
    conn = xfer.connection
    conn.snd_nxt = (conn.snd_una - 1000) & 0xFFFFFFFF
    v = assert_fires(engine, "snd_una", layer="tcp")
    assert v.probe == "probe_tcp_stack"
    assert not engine.ok


def test_detects_snd_nxt_past_snd_max():
    _net, xfer, engine = live_transfer()
    conn = xfer.connection
    conn.snd_nxt = (conn.snd_max + 5000) & 0xFFFFFFFF
    assert_fires(engine, "snd_max", layer="tcp")


def test_detects_nonpositive_cwnd():
    _net, xfer, engine = live_transfer()
    xfer.connection.cc.cwnd = 0
    assert_fires(engine, "cwnd=0", layer="tcp")


def test_detects_cwnd_above_ceiling():
    _net, xfer, engine = live_transfer()
    cc = xfer.connection.cc
    cc.cwnd = cc.max_window + 10 * cc.mss
    assert_fires(engine, "above ceiling", layer="tcp")


def test_detects_ssthresh_below_floor():
    _net, xfer, engine = live_transfer()
    xfer.connection.cc.ssthresh = 1
    assert_fires(engine, "ssthresh", layer="tcp")


def test_detects_overlapping_sack_ranges():
    _net, xfer, engine = live_transfer()
    conn = xfer.connection
    una = conn.snd_una
    conn.scoreboard._ranges = [
        ((una + 100) & 0xFFFFFFFF, (una + 300) & 0xFFFFFFFF),
        ((una + 200) & 0xFFFFFFFF, (una + 400) & 0xFFFFFFFF),
    ]
    assert_fires(engine, "overlap", layer="tcp")


def test_detects_recv_buffer_overflow():
    _net, xfer, engine = live_transfer()
    rb = xfer.connection.recv_buf
    rb._unread = rb.capacity + 5
    assert_fires(engine, "recv_buf unread", layer="tcp")


def test_detects_data_sequenced_past_fin():
    _net, xfer, engine = live_transfer()
    conn = xfer.connection
    conn._fin_seq = (conn.snd_nxt - 10) & 0xFFFFFFFF
    assert_fires(engine, "beyond FIN", layer="tcp")


# ======================================================================
# 6LoWPAN probe
# ======================================================================
def test_detects_overlapping_reassembly_fragments():
    net, _xfer, engine = live_transfer()
    reasm = net.nodes[0].adaptation.reassembler
    reasm._partials[(1, 77)] = SimpleNamespace(
        size=200, received={(0, 100), (50, 100)}, bytes_received=200)
    v = assert_fires(engine, "overlaps", layer="lowpan")
    assert v.probe == "probe_reassembler"
    del reasm._partials[(1, 77)]


def test_detects_reassembly_span_outside_datagram():
    net, _xfer, engine = live_transfer()
    reasm = net.nodes[0].adaptation.reassembler
    reasm._partials[(1, 78)] = SimpleNamespace(
        size=200, received={(150, 100)}, bytes_received=100)
    assert_fires(engine, "outside", layer="lowpan")
    del reasm._partials[(1, 78)]


# ======================================================================
# MAC probe
# ======================================================================
def test_detects_orphaned_ack_timer():
    net, _xfer, engine = live_transfer()
    mac = net.nodes[1].mac
    mac._ack_timer_event = net.sim.schedule(30.0, engine.check_now)
    mac._current = None
    v = assert_fires(engine, "no in-flight", layer="mac")
    assert v.probe == "probe_mac"
    mac._ack_timer_event.cancel()
    mac._ack_timer_event = None


# ======================================================================
# Kernel probes
# ======================================================================
def test_detects_time_rollback():
    net, _xfer, engine = live_transfer()
    engine._last_now = net.sim.now + 10.0
    v = assert_fires(engine, "backwards", layer="kernel")
    assert v.node == -1 and v.probe == "probe_kernel"


def test_detects_heap_order_corruption():
    net, _xfer, engine = live_transfer()
    q = net.sim._queue
    assert len(q) >= 2
    q[0], q[-1] = q[-1], q[0]
    assert_fires(engine, "heap property", layer="kernel")
    q[0], q[-1] = q[-1], q[0]


def test_detects_tombstone_accounting_drift():
    net, _xfer, engine = live_transfer()
    net.sim.cancelled_count += 3
    assert_fires(engine, "tombstone", layer="kernel")
    net.sim.cancelled_count -= 3


# ======================================================================
# Engine mechanics
# ======================================================================
def test_violation_cap_appends_sentinel_and_stops():
    net, _xfer, engine = live_transfer(max_violations=2)
    reasm = net.nodes[0].adaptation.reassembler
    for tag in range(5):  # five bad partials, each one violation
        reasm._partials[(9, tag)] = SimpleNamespace(
            size=200, received={(0, 100), (50, 100)}, bytes_received=200)
    engine.check_now()
    assert len(engine.violations) == 3  # cap + one sentinel
    assert "cap 2 reached" in engine.violations[-1].detail
    engine.check_now()  # further sweeps add nothing
    assert len(engine.violations) == 3


def test_trace_event_triggers_targeted_reprobe():
    _net, xfer, engine = live_transfer()
    conn = xfer.connection
    conn.snd_nxt = (conn.snd_una - 1000) & 0xFFFFFFFF
    swept = engine.checks_run
    engine._on_trace_event(
        SimpleNamespace(layer="tcp", node=1, kind="x", fields={}))
    assert engine.checks_run == swept + 1
    assert any("snd_una" in v.detail for v in engine.violations)
    # events for other layers/nodes don't re-probe TCP on node 1
    engine._on_trace_event(
        SimpleNamespace(layer="phy", node=1, kind="x", fields={}))
    assert engine.checks_run == swept + 1


def test_on_violation_hook_fires_per_violation():
    seen = []
    net, xfer, engine = live_transfer()
    engine.on_violation = seen.append
    xfer.connection.cc.cwnd = 0
    engine.check_now()
    assert seen and "cwnd=0" in seen[0].detail


def test_interval_must_be_positive():
    net = build_pair(seed=1)
    with pytest.raises(ValueError):
        InvariantEngine(net, interval=0.0)


# ======================================================================
# Post-run: armed-timer registry
# ======================================================================
def _noop():
    pass


def test_armed_tcp_timer_flagged_after_teardown():
    sim = Simulator()
    leak = Timer(sim, _noop, name="tcp-rexmit-leaked")
    other = Timer(sim, _noop, name="mac-poll")
    leak.start(3.0)
    other.start(3.0)
    violations = check_no_armed_tcp_timers(sim)
    assert len(violations) == 1
    assert "tcp-rexmit-leaked" in violations[0]
    assert "t=3.000" in violations[0]
    leak.stop()
    assert check_no_armed_tcp_timers(sim) == []
    other.stop()


def test_armed_timers_registry_tracks_start_and_fire():
    sim = Simulator()
    t = Timer(sim, _noop, name="tcp-probe")
    t.start(1.0)
    assert t in sim.armed_timers()
    sim.run(until=2.0)  # fires and withdraws itself
    assert sim.armed_timers() == []


# ======================================================================
# Auto-attach trio (runner --verify plumbing)
# ======================================================================
def test_auto_verify_attaches_engines_to_built_networks():
    try:
        verify.auto_verify(0.5)
        net = build_pair(seed=3)
        assert isinstance(net.verify, InvariantEngine)
        drained = verify.drain_auto()
        assert drained == [net.verify]
        assert verify.drain_auto() == []  # drained means forgotten
    finally:
        verify.auto_verify(None)
    net2 = build_pair(seed=3)
    assert net2.verify is None
