"""Anemometer application: sampling, queueing, batching, transports."""

import pytest

from repro.app.coap import CoapClient
from repro.app.sensor import (
    AnemometerConfig,
    AnemometerNode,
    CoapTransport,
    ReadingServer,
    TcpTransport,
)
from repro.core.params import linux_like_params
from repro.core.simplified import tcplp_params
from repro.core.socket_api import TcpStack
from repro.experiments.topology import CLOUD_ID, build_chain
from repro.sim.engine import Simulator


class RecordingTransport:
    """Test double that records pulls."""

    def __init__(self):
        self.app = None
        self.pulled = []

    def attach(self, app):
        self.app = app

    def pull(self):
        while self.app.can_send():
            self.pulled.append(self.app.pop_readings(5))


def test_sampling_produces_82_byte_readings():
    sim = Simulator()
    transport = RecordingTransport()
    app = AnemometerNode(sim, transport, AnemometerConfig(batching=False))
    app.start()
    sim.run(until=3.5)
    assert app.generated == 3
    total = sum(len(b) for b in transport.pulled)
    assert total == 3 * 82


def test_batching_waits_for_batch_size():
    sim = Simulator()
    transport = RecordingTransport()
    app = AnemometerNode(sim, transport, AnemometerConfig(
        batching=True, batch_size=10, queue_capacity=20))
    app.start()
    sim.run(until=9.5)
    assert transport.pulled == []  # not yet at 10 readings
    sim.run(until=10.5)
    assert sum(len(b) for b in transport.pulled) == 10 * 82


def test_queue_overflow_drops_new_readings():
    sim = Simulator()

    class StuckTransport(RecordingTransport):
        def pull(self):
            pass  # never drains

    transport = StuckTransport()
    app = AnemometerNode(sim, transport, AnemometerConfig(
        batching=False, queue_capacity=5))
    app.start()
    sim.run(until=8.5)
    assert app.generated == 8
    assert app.overflowed == 3
    assert len(app.queue) == 5


def test_reliability_metric():
    sim = Simulator()
    app = AnemometerNode(sim, RecordingTransport(), AnemometerConfig())
    app.generated = 200
    assert app.reliability_against(150) == pytest.approx(0.75)


def test_readings_carry_sequence_numbers():
    sim = Simulator()
    transport = RecordingTransport()
    app = AnemometerNode(sim, transport, AnemometerConfig(batching=False))
    app.start()
    sim.run(until=2.5)
    first = transport.pulled[0][:4]
    assert int.from_bytes(first, "big") == 1


def test_tcp_transport_end_to_end():
    net = build_chain(1, seed=2)
    server = ReadingServer(net.sim)
    cloud_stack = TcpStack(net.sim, net.cloud, CLOUD_ID,
                           default_params=linux_like_params())
    server.attach_tcp(cloud_stack, port=8000)
    stack = TcpStack(net.sim, net.nodes[1].ipv6, 1)
    transport = TcpTransport(net.sim, stack, CLOUD_ID, server_port=8000,
                             params=tcplp_params(to_cloud=True))
    app = AnemometerNode(net.sim, transport, AnemometerConfig(
        batching=True, batch_size=5, queue_capacity=64))
    app.start()
    net.sim.run(until=20.0)
    assert server.tcp_readings >= 15
    assert app.overflowed == 0


def test_coap_transport_end_to_end():
    net = build_chain(1, seed=3)
    server = ReadingServer(net.sim)
    server.attach_coap(net.cloud)
    client = CoapClient(net.sim, net.nodes[1].udp, net.rng, CLOUD_ID)
    transport = CoapTransport(client)
    app = AnemometerNode(net.sim, transport, AnemometerConfig(
        batching=True, batch_size=5, queue_capacity=104))
    app.start()
    net.sim.run(until=20.0)
    assert server.coap_readings >= 15


def test_tcp_transport_reconnects_after_error():
    net = build_chain(1, seed=4)
    server = ReadingServer(net.sim)
    cloud_stack = TcpStack(net.sim, net.cloud, CLOUD_ID,
                           default_params=linux_like_params())
    server.attach_tcp(cloud_stack, port=8000)
    stack = TcpStack(net.sim, net.nodes[1].ipv6, 1)
    transport = TcpTransport(net.sim, stack, CLOUD_ID, server_port=8000,
                             params=tcplp_params(to_cloud=True),
                             reconnect_delay=0.5)
    app = AnemometerNode(net.sim, transport, AnemometerConfig(batching=False))
    app.start()
    net.sim.run(until=5.0)
    # kill the connection out from under the transport
    transport.conn._error_out("injected failure")
    net.sim.run(until=15.0)
    assert transport.reconnects == 1
    assert transport.conn.is_open
    assert server.tcp_readings >= 10


def test_phase_staggers_first_sample():
    sim = Simulator()
    transport = RecordingTransport()
    app = AnemometerNode(sim, transport, AnemometerConfig(batching=False))
    app.start(phase=5.0)
    sim.run(until=5.5)
    assert app.generated == 0
    sim.run(until=6.5)
    assert app.generated == 1
