"""Boundary coverage: sequence wraparound, 1-frame MSS, pull-model recv."""

import pytest

from repro.core.params import TcpParams, mss_for_frames
from repro.core.simplified import tcplp_params
from repro.core.socket_api import TcpStack
from repro.experiments.topology import build_pair


def run_transfer(net, payload, params, iss=None):
    sa = TcpStack(net.sim, net.nodes[0].ipv6, 0)
    sb = TcpStack(net.sim, net.nodes[1].ipv6, 1)
    if iss is not None:
        sa._iss = iss - 64000  # next_iss() adds 64000
    got = []
    sb.listen(8000, lambda c: setattr(c, "on_data", got.append),
              params=params)
    conn = sa.connect(1, 8000, params=params)
    sent = [0]

    def fill():
        while sent[0] < len(payload) and conn.send_buf.free > 0:
            n = conn.send(payload[sent[0]: sent[0] + 512])
            sent[0] += n
            if n == 0:
                break

    conn.on_connect = fill
    conn.on_send_space = fill
    net.sim.run(until=120.0)
    return b"".join(got), conn


def test_transfer_across_sequence_wraparound():
    """Start the connection 2000 bytes below 2^32 and push 8 KiB: every
    comparison on the sequence circle gets exercised."""
    net = build_pair(seed=60)
    payload = bytes((i * 31 + 5) % 256 for i in range(8192))
    data, conn = run_transfer(net, payload, tcplp_params(),
                              iss=(1 << 32) - 2000)
    assert data == payload
    assert conn.snd_una < (1 << 32) - 2000  # we wrapped


def test_one_frame_mss_works():
    """The paper couldn't test MSS = 1 frame (Linux refused); we can."""
    mss = mss_for_frames(1)
    assert mss == 69
    params = TcpParams(mss=mss, send_buffer=4 * mss, recv_buffer=4 * mss)
    net = build_pair(seed=61)
    payload = bytes(range(256)) * 4
    data, conn = run_transfer(net, payload, params)
    assert data == payload
    # every data segment fits one unfragmented frame
    assert net.nodes[0].trace.counters.get("lowpan.fragments_sent") == (
        net.nodes[0].trace.counters.get("lowpan.datagrams_sent")
    )


def test_recv_pull_model_without_callback():
    """Without on_data, bytes accumulate until the app calls recv()."""
    net = build_pair(seed=62)
    sa = TcpStack(net.sim, net.nodes[0].ipv6, 0)
    sb = TcpStack(net.sim, net.nodes[1].ipv6, 1)
    server_box = []
    sb.listen(8000, server_box.append, params=tcplp_params())
    conn = sa.connect(1, 8000, params=tcplp_params())
    net.sim.run(until=2.0)
    conn.send(b"pull me")
    net.sim.run(until=4.0)
    server = server_box[0]
    assert server.recv_buf.available == 7
    assert server.recv(4) == b"pull"
    assert server.recv() == b" me"
    assert server.recv() == b""


def test_window_advertisement_capped_at_16_bits():
    """§4.1: window scaling is omitted, so advertised windows clamp at
    65535 even if the buffer is nominally larger."""
    params = TcpParams(mss=1460, send_buffer=100_000, recv_buffer=100_000)
    net = build_pair(seed=63)
    sa = TcpStack(net.sim, net.nodes[0].ipv6, 0)
    sb = TcpStack(net.sim, net.nodes[1].ipv6, 1)
    sb.listen(8000, lambda c: None, params=params)
    conn = sa.connect(1, 8000, params=params)
    net.sim.run(until=2.0)
    assert conn.snd_wnd <= 0xFFFF


def test_send_rejected_after_close():
    net = build_pair(seed=64)
    sa = TcpStack(net.sim, net.nodes[0].ipv6, 0)
    sb = TcpStack(net.sim, net.nodes[1].ipv6, 1)
    sb.listen(8000, lambda c: None, params=tcplp_params())
    conn = sa.connect(1, 8000, params=tcplp_params())
    net.sim.run(until=2.0)
    conn.close()
    with pytest.raises(RuntimeError):
        conn.send(b"too late")


def test_iss_spacing_between_connections():
    net = build_pair(seed=65)
    sa = TcpStack(net.sim, net.nodes[0].ipv6, 0)
    sb = TcpStack(net.sim, net.nodes[1].ipv6, 1)
    sb.listen(8000, lambda c: None, params=tcplp_params())
    c1 = sa.connect(1, 8000, params=tcplp_params())
    c2 = sa.connect(1, 8000, params=tcplp_params())
    assert c1.iss != c2.iss
