"""Pcap export: the capture must be structurally valid and decodable."""

import pytest

from repro.core.params import linux_like_params
from repro.core.segment import Segment
from repro.core.simplified import tcplp_params
from repro.core.socket_api import TcpStack
from repro.experiments.topology import CLOUD_ID, build_chain
from repro.net.ipv6 import decode_header
from repro.net.pcap import LINKTYPE_RAW, PcapWriter, encode_packet, read_pcap


def capture_handshake(tmp_path):
    net = build_chain(1, seed=80)
    path = str(tmp_path / "wired.pcap")
    writer = PcapWriter(path, net.sim)
    writer.attach_wired(net.wired)
    mote = TcpStack(net.sim, net.nodes[1].ipv6, 1)
    cloud = TcpStack(net.sim, net.cloud, CLOUD_ID,
                     default_params=linux_like_params())
    got = []
    cloud.listen(8000, lambda c: setattr(c, "on_data", got.append))
    conn = mote.connect(CLOUD_ID, 8000, params=tcplp_params(to_cloud=True),
                        dst_is_cloud=True)
    conn.on_connect = lambda: conn.send(b"captured!")
    net.sim.run(until=5.0)
    writer.close()
    assert b"".join(got) == b"captured!"
    return path, writer


def test_capture_file_structure(tmp_path):
    path, writer = capture_handshake(tmp_path)
    header, records = read_pcap(path)
    assert header["network"] == LINKTYPE_RAW
    assert header["major"] == 2 and header["minor"] == 4
    assert len(records) == writer.packets_written
    assert len(records) >= 4  # SYN, SYN-ACK, ACK, data, ACK...


def test_captured_packets_decode_as_ipv6_tcp(tmp_path):
    path, _ = capture_handshake(tmp_path)
    _, records = read_pcap(path)
    ts0, first = records[0]
    pkt = decode_header(first[:40])
    assert pkt.next_header == 6  # TCP
    seg = Segment.decode(first[40:])
    assert seg.syn and not seg.ack_flag  # the mote's SYN
    # timestamps are simulated time, monotonically non-decreasing
    times = [ts for ts, _ in records]
    assert times == sorted(times)


def test_payload_byte_lengths_match_declared(tmp_path):
    path, _ = capture_handshake(tmp_path)
    _, records = read_pcap(path)
    for _, raw in records:
        pkt = decode_header(raw[:40])
        assert len(raw) == 40 + pkt.payload_bytes


def test_write_after_close_rejected(tmp_path):
    net = build_chain(1, seed=81)
    writer = PcapWriter(str(tmp_path / "x.pcap"), net.sim)
    writer.close()
    from repro.net.ipv6 import Ipv6Packet

    with pytest.raises(RuntimeError):
        writer.write(Ipv6Packet(src=1, dst=2, next_header=6,
                                payload=None, payload_bytes=0))


def test_read_rejects_non_pcap(tmp_path):
    bogus = tmp_path / "not.pcap"
    bogus.write_bytes(b"\x00" * 40)
    with pytest.raises(ValueError):
        read_pcap(str(bogus))


def test_encode_packet_udp_coap():
    from repro.app.coap import CODE_POST, CoapMessage, CoapType
    from repro.net.ipv6 import Ipv6Packet, PROTO_UDP
    from repro.net.udp import UdpDatagram

    msg = CoapMessage(CoapType.CON, CODE_POST, 5, 6, b"reading")
    dgram = UdpDatagram(5683, 5684, msg, msg.wire_bytes)
    pkt = Ipv6Packet(src=1, dst=2, next_header=PROTO_UDP, payload=dgram,
                     payload_bytes=dgram.wire_bytes(compressed=False))
    raw = encode_packet(pkt)
    assert len(raw) == 40 + 8 + msg.wire_bytes
    parsed = CoapMessage.decode(raw[48:])
    assert parsed.payload == b"reading"
