"""Sharded tier: planning, refusals, and oracle equivalence.

The heavyweight contract — byte-identical merged traces, metrics and
flow outcomes at any shard count — is enforced in CI by the
``shard-equivalence`` job at full gate durations; the equivalence tests
here run the same machinery at shorter horizons so the contract is also
exercised by plain ``pytest``.
"""

import pytest

from repro.api import ShardedSimulator, ShardRecipe, make_simulator
from repro.experiments.workload import FlowSpec
from repro.sim.engine import Simulator
from repro.sim.shard import (
    ShardError,
    _WorkerSim,
    default_gate_recipe,
    equivalence_report,
    plan_shards,
    recipe_positions,
)


# ----------------------------------------------------------------------
# planning
# ----------------------------------------------------------------------
def grid_positions(rows, cols, spacing=8.0):
    return {r * cols + c: (c * spacing, r * spacing)
            for r in range(rows) for c in range(cols)}


def test_plan_covers_every_node_exactly_once():
    positions = grid_positions(4, 10)
    for shards in (1, 2, 3, 4):
        plan = plan_shards(positions, 10.0, shards)
        assert len(plan) == shards
        flat = [n for band in plan for n in band]
        assert sorted(flat) == sorted(positions)


def test_plan_cuts_along_cell_columns():
    # spacing 8, comm_range 10 -> spatial cells hold whole grid columns;
    # a band boundary must never split one cell column.
    positions = grid_positions(4, 10)
    plan = plan_shards(positions, 10.0, 2)
    for band in plan:
        cells = {int(positions[n][0] // 10.0) for n in band}
        for other in plan:
            if other is band:
                continue
            assert not (cells & {int(positions[n][0] // 10.0)
                                 for n in other})


def test_plan_is_roughly_balanced():
    positions = grid_positions(5, 20)
    plan = plan_shards(positions, 10.0, 4)
    sizes = [len(band) for band in plan]
    assert min(sizes) > 0
    assert max(sizes) <= 1.6 * (len(positions) / 4)


def test_plan_rejects_bad_counts():
    positions = grid_positions(2, 2)
    with pytest.raises(ShardError):
        plan_shards(positions, 10.0, 0)
    with pytest.raises(ShardError):
        plan_shards(positions, 10.0, 5)


def test_recipe_positions_match_grid_builder():
    recipe = ShardRecipe(builder="grid",
                         builder_kwargs={"rows": 3, "cols": 4, "seed": 1})
    assert recipe_positions(recipe) == grid_positions(3, 4)


# ----------------------------------------------------------------------
# refusals
# ----------------------------------------------------------------------
def gate_kwargs(**overrides):
    kw = {"rows": 4, "cols": 5, "seed": 3}
    kw.update(overrides)
    return kw


@pytest.mark.parametrize("mutate, match", [
    (dict(builder="chain"), "not shardable"),
    (dict(builder_kwargs=gate_kwargs(with_cloud=True)), "cloud"),
    (dict(builder_kwargs=gate_kwargs(accel=True)), "oracle kernel"),
    (dict(builder_kwargs=gate_kwargs(fidelity="hybrid")), "fidelity"),
    (dict(tx_turnaround=0.0), "tx_turnaround"),
    (dict(flows=[FlowSpec(src=0, dst=1, dst_is_cloud=True)]), "cloud"),
    (dict(flows=[FlowSpec(src=3, dst=3)]), "src == dst"),
    (dict(chaos={"name": "x", "faults": [
        {"kind": "bursty_loss", "p_good_bad": 0.03,
         "p_bad_good": 0.3}]}), "global RNG"),
])
def test_unshardable_recipes_are_refused(mutate, match):
    recipe = default_gate_recipe()
    for key, value in mutate.items():
        setattr(recipe, key, value)
    with pytest.raises(ShardError, match=match):
        recipe.validate()


def test_make_simulator_shard_surface():
    with pytest.raises(ValueError, match="ShardRecipe"):
        make_simulator(shards=2)
    recipe = default_gate_recipe()
    with pytest.raises(ValueError, match="oracle kernel"):
        make_simulator(shards=2, recipe=recipe, accel=True)
    sharded = make_simulator(shards=2, recipe=recipe)
    try:
        assert isinstance(sharded, ShardedSimulator)
        assert sharded.shards == 2
    finally:
        sharded.close()


# ----------------------------------------------------------------------
# ghost tie ordering (the _WorkerSim seq-key machinery)
# ----------------------------------------------------------------------
def test_ghost_seq_key_orders_at_commit_instant():
    # A ghost committed at t=1.2 must dispatch after events scheduled
    # at instants <= 1.2 and before events scheduled later, even when
    # all of them fire at the same time — the oracle's tie order.
    sim = Simulator()
    sim.__class__ = _WorkerSim
    sim._init_shard_log()
    order = []
    sim.schedule_at(1.0, lambda: sim.schedule_at(5.0, order.append, "a"))
    sim.schedule_at(1.5, lambda: sim.schedule_at(5.0, order.append, "b"))
    sim.begin_seqlog()
    sim.run_exclusive(2.0)
    sim.schedule_ghost(5.0, 1.2, order.append, "ghost")
    sim.begin_seqlog()
    sim.run(until=6.0)
    assert order == ["a", "ghost", "b"]


def test_ghost_keys_stay_unique_and_monotone():
    sim = Simulator()
    sim.__class__ = _WorkerSim
    sim._init_shard_log()
    sim.begin_seqlog()
    sim.run_exclusive(1.0)
    first = sim.schedule_ghost(2.0, 0.5, lambda: None)
    second = sim.schedule_ghost(2.0, 0.5, lambda: None)
    assert first.seq < second.seq  # delivery order preserved
    assert first.seq != second.seq


# ----------------------------------------------------------------------
# oracle equivalence (short-horizon version of the CI gate)
# ----------------------------------------------------------------------
def test_sharded_matches_oracle_byte_for_byte():
    report = equivalence_report(default_gate_recipe(), warmup=0.4,
                                duration=0.8, shard_counts=[1, 2])
    assert report["ok"], report["failures"]
    for run in report["runs"]:
        assert run["identical"]
        assert run["trace_events"] == report["oracle"]["trace_events"]


def test_sharded_matches_oracle_under_chaos():
    # Horizon covers the link flap (1.2), reboot (1.6) and the drift.
    report = equivalence_report(default_gate_recipe(chaos=True),
                                warmup=0.5, duration=1.3,
                                shard_counts=[2])
    assert report["ok"], report["failures"]
