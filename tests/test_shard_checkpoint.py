"""Checkpoint/resume of a sharded run.

The coordinator checkpoint (PR5's :class:`Checkpoint` machinery, one
blob per worker plus the coordinator's clock and in-flight ghosts) must
resume to a byte-identical merged trace — including when the snapshot
instant has a frame mid-air *across a shard boundary*, the case where
the ghost bookkeeping itself is part of the saved state.
"""

import json

import pytest

from repro.sim.shard import (
    ShardedSimulator,
    ShardError,
    default_gate_recipe,
    resume_sharded,
    run_sharded,
)

WARMUP = 0.5
DURATION = 1.0
SHARDS = 2


def canon(payload):
    return json.dumps(payload, sort_keys=True)


@pytest.fixture(scope="module")
def full_run():
    """One full sharded run, checkpointed at a cross-traffic barrier."""
    recipe = default_gate_recipe()
    probe = run_sharded(recipe, SHARDS, WARMUP, DURATION)
    cross = [(t, c) for t, c in probe["barrier_log"] if c > 0]
    assert cross, "gate mesh produced no cross-shard frames in flight"
    checkpoint_at = cross[len(cross) // 2][0]
    full = run_sharded(recipe, SHARDS, WARMUP, DURATION,
                       checkpoint_at=checkpoint_at)
    return probe, full


def test_checkpoint_caught_a_boundary_frame_in_flight(full_run):
    _, full = full_run
    assert full["checkpoint"] is not None
    # the point of the fixture's barrier choice: the snapshot has at
    # least one frame mid-air between shards
    assert full["checkpoint_cross"] > 0


def test_resume_is_byte_identical(full_run):
    probe, full = full_run
    resumed = resume_sharded(full["checkpoint"], WARMUP + DURATION,
                             DURATION)
    assert canon(resumed["trace"]) == canon(full["trace"])
    assert canon(resumed["flows"]) == canon(full["flows"])
    assert canon(resumed["metrics"]) == canon(full["metrics"])
    assert resumed["now"] == full["now"]
    # and the checkpointed run itself matched the uncheckpointed one
    assert canon(full["trace"]) == canon(probe["trace"])


def test_resume_rejects_foreign_blobs():
    import pickle

    with pytest.raises(ShardError, match="magic"):
        ShardedSimulator.resume(pickle.dumps({"not": "a checkpoint"}))
