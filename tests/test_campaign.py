"""Campaign engine: spec validation, expansion determinism, caching,
statistics, search, and the legacy-runner compatibility shims."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.campaign import (
    CampaignSpec,
    ExperimentCatalog,
    ResultStore,
    RunSpec,
    aggregate,
    auto_metrics,
    golden_section,
    grid_search,
    plan_campaign,
    resolve_selection,
    run_campaign,
)

SRC = Path(__file__).resolve().parent.parent / "src"
TOOLS = Path(__file__).resolve().parent.parent / "tools"


# ----------------------------------------------------------------------
# module-level factories (picklable, introspectable)
# ----------------------------------------------------------------------


def linear_cell(quick, x=1, scale=10, seed=0):
    """Deterministic analytic cell: value depends on params + seed."""
    del quick
    return {"value": x * scale + seed, "x": x, "tag": "linear"}


def quadratic_cell(quick, x=0.0, seed=0):
    del quick, seed
    return {"loss_metric": (x - 3.0) ** 2 + 1.0}


def seedless_cell(quick, x=1):
    del quick
    return {"value": x}


def failing_cell(quick, x=1, seed=0):
    del quick, seed
    if x == 2:
        raise RuntimeError("x=2 always fails")
    return {"value": x}


def make_catalog():
    return ExperimentCatalog({
        "linear_cell": linear_cell,
        "quadratic_cell": quadratic_cell,
        "seedless_cell": seedless_cell,
        "failing_cell": failing_cell,
    })


def run_quiet(spec, **kwargs):
    return run_campaign(spec, progress=lambda *_: None, **kwargs)


# ----------------------------------------------------------------------
# selection resolver (shared by CLI --only, API only=, and specs)
# ----------------------------------------------------------------------


class TestResolveSelection:
    def test_none_means_everything(self):
        assert resolve_selection(None, ["a", "b"]) is None

    def test_string_comma_and_space_forms(self):
        avail = ["a", "b", "c"]
        assert resolve_selection("a,b", avail) == ["a", "b"]
        assert resolve_selection("a b", avail) == ["a", "b"]
        assert resolve_selection(["a", "b,c"], avail) == ["a", "b", "c"]

    def test_first_mention_dedup(self):
        assert resolve_selection("a,b,a", ["a", "b"]) == ["a", "b"]

    def test_close_match_suggestion(self):
        with pytest.raises(ValueError, match="did you mean 'fig9_loss'"):
            resolve_selection("fig9_los", ["fig9_loss", "fig4_mss"])

    def test_empty_selection_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            resolve_selection([""], ["a"])

    def test_non_string_entry_rejected(self):
        with pytest.raises(ValueError, match="must be strings"):
            resolve_selection([3], ["a"])


# ----------------------------------------------------------------------
# catalog
# ----------------------------------------------------------------------


class TestExperimentCatalog:
    def test_register_and_names_preserve_order(self):
        cat = make_catalog()
        assert cat.names()[:2] == ["linear_cell", "quadratic_cell"]
        assert "linear_cell" in cat and len(cat) == 4

    def test_copy_is_isolated(self):
        cat = make_catalog()
        clone = cat.copy()
        clone.register("extra", linear_cell)
        assert "extra" in clone and "extra" not in cat

    def test_unknown_name_suggests(self):
        with pytest.raises(ValueError, match="did you mean"):
            make_catalog().get("linear_cel")

    def test_accepted_params_drops_quick(self):
        accepted, var_kw = make_catalog().accepted_params("linear_cell")
        assert accepted == {"x", "scale", "seed"}
        assert not var_kw

    def test_legacy_shims_route_to_default_catalog(self):
        from repro.experiments import runner

        def _shim_exp(quick):
            return {"ok": quick}

        runner.register_experiment("campaign_shim_exp", _shim_exp)
        try:
            assert "campaign_shim_exp" in runner.DEFAULT_CATALOG
            assert "campaign_shim_exp" in runner.experiment_registry(True)
        finally:
            runner.unregister_experiment("campaign_shim_exp")
        assert "campaign_shim_exp" not in runner.DEFAULT_CATALOG


# ----------------------------------------------------------------------
# spec validation
# ----------------------------------------------------------------------


class TestSpecValidation:
    def test_unknown_top_key(self):
        with pytest.raises(ValueError, match="unknown keys"):
            CampaignSpec.from_dict({"experiments": ["x"], "grids": {}})

    def test_grid_values_must_be_scalars(self):
        with pytest.raises(ValueError, match="JSON scalars"):
            CampaignSpec.from_dict(
                {"experiments": ["x"], "grid": {"a": [[1]]}})

    def test_duplicate_grid_values(self):
        with pytest.raises(ValueError, match="duplicate"):
            CampaignSpec.from_dict(
                {"experiments": ["x"], "grid": {"a": [1, 1]}})

    def test_duplicate_seeds(self):
        with pytest.raises(ValueError, match="duplicate seeds"):
            CampaignSpec.from_dict({"experiments": ["x"],
                                    "seeds": [0, 0]})

    def test_seed_count_form(self):
        spec = CampaignSpec.from_dict(
            {"experiments": ["x"], "seeds": {"count": 3, "base": 5}})
        assert spec.seeds == [5, 6, 7]

    def test_retries_need_timeout(self):
        with pytest.raises(ValueError, match="timeout"):
            CampaignSpec.from_dict({"experiments": ["x"],
                                    "runner": {"retries": 2}})

    def test_unknown_experiment_fails_at_expand(self):
        spec = CampaignSpec.from_dict({"experiments": ["linear_cel"]})
        with pytest.raises(ValueError, match="did you mean"):
            spec.expand(make_catalog())

    def test_unknown_grid_axis_suggests(self):
        spec = CampaignSpec.from_dict(
            {"experiments": ["linear_cell"], "grid": {"scal": [1]}})
        with pytest.raises(ValueError, match="did you mean 'scale'"):
            spec.expand(make_catalog())

    def test_seeds_against_seedless_experiment(self):
        spec = CampaignSpec.from_dict(
            {"experiments": ["seedless_cell"], "seeds": [0, 1]})
        with pytest.raises(ValueError, match="does not accept a seed"):
            spec.expand(make_catalog())

    def test_objective_validation(self):
        base = {"metric": "m", "axis": "x", "bounds": [0, 10]}
        CampaignSpec.from_dict({"experiments": ["x"],
                                "objective": dict(base)})
        for patch in ({"mode": "best"}, {"bounds": [5, 5]},
                      {"method": "newton"}, {"steps": 1},
                      {"tolerance": 0}, {"unknown_key": 1}):
            with pytest.raises(ValueError, match="objective"):
                CampaignSpec.from_dict(
                    {"experiments": ["x"],
                     "objective": {**base, **patch}})

    def test_round_trip(self):
        doc = {"name": "n", "experiments": ["linear_cell"],
               "grid": {"x": [1, 2]}, "seeds": [0, 1]}
        spec = CampaignSpec.from_dict(doc)
        again = CampaignSpec.from_dict(spec.to_dict())
        assert spec.to_dict() == again.to_dict()
        assert spec.digest() == again.digest()


# ----------------------------------------------------------------------
# expansion determinism
# ----------------------------------------------------------------------

_EXPANSION_SPEC = {
    "experiments": ["linear_cell"],
    "grid": {"x": [2, 1], "scale": [10, 100]},
    "seeds": [1, 0],
}


class TestExpansion:
    def test_fixed_order(self):
        spec = CampaignSpec.from_dict(_EXPANSION_SPEC)
        runs = spec.expand(make_catalog())
        # grid axes in spec key order (first axis outermost), values
        # in spec order, seeds last
        key = [(r.params_dict["x"], r.params_dict["scale"], r.seed)
               for r in runs]
        assert key == [
            (2, 10, 1), (2, 10, 0), (2, 100, 1), (2, 100, 0),
            (1, 10, 1), (1, 10, 0), (1, 100, 1), (1, 100, 0),
        ]

    def test_seedless_experiment_collapses_to_one_rep(self):
        spec = CampaignSpec.from_dict(
            {"experiments": ["seedless_cell"], "grid": {"x": [2, 1]}})
        runs = spec.expand(make_catalog())
        assert [(r.params_dict["x"], r.seed) for r in runs] == [
            (2, None), (1, None)]

    def test_empty_experiments_means_whole_catalog(self):
        spec = CampaignSpec.from_dict({"experiments": []})
        runs = spec.expand(ExperimentCatalog({"seedless_cell":
                                              seedless_cell}))
        assert [r.experiment for r in runs] == ["seedless_cell"]

    def test_run_ids_stable_across_processes(self):
        spec = CampaignSpec.from_dict(_EXPANSION_SPEC)
        here = [r.run_id("fixed-salt") for r in spec.expand()]
        script = (
            "import json, sys\n"
            "from repro.campaign import CampaignSpec\n"
            "spec = CampaignSpec.from_dict(json.loads(sys.argv[1]))\n"
            "print(json.dumps([r.run_id('fixed-salt')\n"
            "                  for r in spec.expand()]))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", script, json.dumps(_EXPANSION_SPEC)],
            capture_output=True, text=True, check=True,
            env={**os.environ, "PYTHONPATH": str(SRC)})
        assert json.loads(out.stdout) == here

    def test_params_order_does_not_change_identity(self):
        a = RunSpec.build("e", {"a": 1, "b": 2}, 0, True, None,
                          {"accel": False, "fidelity": "full"})
        b = RunSpec.build("e", {"b": 2, "a": 1}, 0, True, None,
                          {"fidelity": "full", "accel": False})
        assert a.run_id("s") == b.run_id("s")

    def test_seed_changes_run_id_but_not_cell_id(self):
        kernel = {"accel": False, "fidelity": "full"}
        a = RunSpec.build("e", {"x": 1}, 0, True, None, kernel)
        b = RunSpec.build("e", {"x": 1}, 1, True, None, kernel)
        assert a.run_id("s") != b.run_id("s")
        assert a.cell_id() == b.cell_id()


# ----------------------------------------------------------------------
# caching: hits, misses, salt invalidation, failures, resume
# ----------------------------------------------------------------------

_CACHE_SPEC = {
    "name": "cache-test",
    "experiments": ["linear_cell"],
    "grid": {"x": [1, 2]},
    "seeds": [0, 1],
}


class TestCaching:
    def test_second_run_all_hits_byte_identical(self, tmp_path):
        store = ResultStore(tmp_path / "store", salt="s1")
        first = run_quiet(dict(_CACHE_SPEC), store=store,
                          catalog=make_catalog())
        assert first.execution["cache_misses"] == 4
        assert first.execution["cache_hits"] == 0
        second = run_quiet(dict(_CACHE_SPEC), store=store,
                           catalog=make_catalog())
        assert second.execution["cache_misses"] == 0
        assert second.execution["cache_hits"] == 4
        assert first.to_json() == second.to_json()

    def test_spec_edit_executes_only_delta(self, tmp_path):
        store = ResultStore(tmp_path / "store", salt="s1")
        run_quiet(dict(_CACHE_SPEC), store=store, catalog=make_catalog())
        wider = dict(_CACHE_SPEC, grid={"x": [1, 2, 3]},
                     seeds=[0, 1, 2])
        report = run_quiet(wider, store=store, catalog=make_catalog())
        # 3x3 = 9 runs, 4 already cached from the narrower campaign
        assert report.execution["cache_hits"] == 4
        assert report.execution["cache_misses"] == 5

    def test_salt_change_invalidates_everything(self, tmp_path):
        store1 = ResultStore(tmp_path / "store", salt="s1")
        run_quiet(dict(_CACHE_SPEC), store=store1,
                  catalog=make_catalog())
        store2 = ResultStore(tmp_path / "store", salt="s2")
        report = run_quiet(dict(_CACHE_SPEC), store=store2,
                           catalog=make_catalog())
        assert report.execution["cache_hits"] == 0
        assert report.execution["cache_misses"] == 4

    def test_failed_runs_not_cached(self, tmp_path):
        store = ResultStore(tmp_path / "store", salt="s1")
        spec = {"experiments": ["failing_cell"], "grid": {"x": [1, 2]}}
        first = run_quiet(dict(spec), store=store,
                          catalog=make_catalog())
        assert len(first.execution["errors"]) == 1
        [cell] = [c for c in first.cells if c.params["x"] == 2]
        assert cell.errors and "x=2 always fails" in cell.errors[0]
        # the failure re-executes; the success is a hit
        second = run_quiet(dict(spec), store=store,
                           catalog=make_catalog())
        assert second.execution["cache_hits"] == 1
        assert second.execution["cache_misses"] == 1

    def test_store_roundtrip_and_atomicity(self, tmp_path):
        store = ResultStore(tmp_path / "store", salt="s")
        run = RunSpec.build("e", {"x": 1}, 0, True, None,
                            {"accel": False, "fidelity": "full"})
        key = store.key_for(run)
        assert store.load(key) is None
        store.save(key, {"ok": True, "result": {"v": 1}})
        assert store.load(key)["result"] == {"v": 1}
        assert run in store and len(store) == 1
        # corrupt record degrades to a miss, not an exception
        store.path_for(key).write_text("{torn")
        assert store.load(key) is None

    def test_plan_campaign_reports_cache_status(self, tmp_path):
        store = ResultStore(tmp_path / "store", salt="s1")
        narrow = dict(_CACHE_SPEC, seeds=[0])
        run_quiet(narrow, store=store, catalog=make_catalog())
        plan = plan_campaign(CampaignSpec.from_dict(dict(_CACHE_SPEC)),
                             store=store, catalog=make_catalog())
        assert plan["runs"] == 4
        assert plan["cached"] == 2
        assert plan["to_execute"] == 2
        # misses get a wall estimate from the cached runs' history
        for entry in plan["plan"]:
            if not entry["cached"]:
                assert entry["wall_estimate_s"] >= 0


# ----------------------------------------------------------------------
# statistics
# ----------------------------------------------------------------------


class TestStats:
    def test_t_interval_hand_checked(self):
        # mean 3, stdev sqrt(2.5); t(0.95, df=4) = 2.776
        agg = aggregate([1, 2, 3, 4, 5], confidence=0.95, method="t")
        assert agg["n"] == 5
        assert agg["mean"] == pytest.approx(3.0)
        half = 2.776 * (2.5 ** 0.5) / (5 ** 0.5)
        assert agg["ci_low"] == pytest.approx(3.0 - half, rel=1e-3)
        assert agg["ci_high"] == pytest.approx(3.0 + half, rel=1e-3)

    def test_single_sample_degenerate_interval(self):
        agg = aggregate([7.0])
        assert agg["ci_low"] == agg["ci_high"] == 7.0

    def test_bootstrap_deterministic(self):
        kw = dict(method="bootstrap", bootstrap_samples=200, rng_seed=42)
        a = aggregate([1, 2, 3, 4, 5], **kw)
        b = aggregate([1, 2, 3, 4, 5], **kw)
        assert a == b
        assert a["ci_low"] <= a["mean"] <= a["ci_high"]

    def test_warmup_and_outlier_policy(self):
        values = [100.0, 5.0, 6.0, 5.5, 50.0]
        agg = aggregate(values, warmup=1, outlier_iqr=1.5)
        assert agg["discarded_warmup"] == 1
        assert agg["discarded_outliers"] == 1
        assert agg["n"] == 3
        assert agg["mean"] == pytest.approx((5.0 + 6.0 + 5.5) / 3)

    def test_auto_metrics_numeric_common_fields(self):
        results = [{"a": 1, "b": True, "c": "x", "d": 2.5},
                   {"a": 2, "b": False, "c": "y", "d": 0.5, "e": 9}]
        assert auto_metrics(results) == ["a", "d"]

    def test_cell_aggregation_in_report(self, tmp_path):
        report = run_quiet(dict(_CACHE_SPEC), catalog=make_catalog())
        [cell] = [c for c in report.cells if c.params["x"] == 1]
        agg = cell.metrics["value"]  # seeds 0,1 -> values 10, 11
        assert agg["n"] == 2
        assert agg["mean"] == pytest.approx(10.5)
        assert agg["ci_low"] <= 10.5 <= agg["ci_high"]


# ----------------------------------------------------------------------
# report surfaces
# ----------------------------------------------------------------------


class TestReport:
    def test_execution_sidecar_excluded_from_canonical(self):
        report = run_quiet(dict(_CACHE_SPEC), catalog=make_catalog())
        doc = report.to_dict()
        assert "execution" not in doc
        assert report.execution["runs"] == 4
        assert "execution" in report.to_dict(include_execution=True)

    def test_grid_table_two_axes_and_hidden_axis_clash(self):
        spec = {"experiments": ["linear_cell"],
                "grid": {"x": [1, 2], "scale": [10, 100]}}
        report = run_quiet(spec, catalog=make_catalog())
        two = report.grid_table("value", rows="x", cols="scale")
        assert "x\\scale" in two and "200" in two
        # collapsing to one axis hides `scale`; averaging across a
        # hidden axis silently would lie, so it raises instead
        with pytest.raises(ValueError, match="multiple cells"):
            report.grid_table("value", rows="x")

    def test_grid_table_single_axis(self):
        report = run_quiet({"experiments": ["linear_cell"],
                            "grid": {"x": [1, 2]}},
                           catalog=make_catalog())
        one = report.grid_table("value", rows="x")
        assert "value" in one and "20" in one

    def test_write_jsonl(self, tmp_path):
        report = run_quiet(dict(_CACHE_SPEC), catalog=make_catalog())
        path = tmp_path / "runs.jsonl"
        lines = report.write_jsonl(path)
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines == len(rows) == 4 + 2  # 4 runs + 2 cells
        kinds = [r["kind"] for r in rows]
        assert kinds == ["run"] * 4 + ["cell"] * 2


# ----------------------------------------------------------------------
# search
# ----------------------------------------------------------------------


class TestSearch:
    def test_golden_matches_brute_force_integer(self):
        calls = []

        def f(x):
            calls.append(x)
            return (x - 11) ** 2

        best = golden_section(f, 0, 40, integer=True)
        assert best == 11
        assert len(set(calls)) < 41  # strictly fewer than brute force

    def test_golden_continuous_tolerance(self):
        best = golden_section(lambda x: (x - 3.2) ** 2, 0.0, 10.0,
                              tolerance=1e-4)
        assert best == pytest.approx(3.2, abs=1e-3)

    def test_grid_search(self):
        best = grid_search(lambda x: (x - 4) ** 2, 0, 10, steps=11,
                           integer=True)
        assert best == 4

    def test_search_campaign_quadratic(self, tmp_path):
        spec = {
            "experiments": ["quadratic_cell"],
            "objective": {"metric": "loss_metric", "axis": "x",
                          "bounds": [0, 10], "integer": True},
        }
        store = ResultStore(tmp_path / "store", salt="s1")
        report = run_quiet(dict(spec), store=store,
                           catalog=make_catalog())
        assert report.search["best"]["value"] == 3
        probes1 = report.search["evaluations"]
        # repeating the search is pure cache lookup
        again = run_quiet(dict(spec), store=store,
                          catalog=make_catalog())
        assert again.search["evaluations"] == probes1
        assert again.execution["search"]["executed"] == 0
        assert again.to_json() == report.to_json()

    def test_search_mode_max(self, tmp_path):
        spec = {
            "experiments": ["quadratic_cell"],
            "objective": {"metric": "loss_metric", "axis": "x",
                          "mode": "max", "bounds": [0, 10],
                          "integer": True, "method": "grid",
                          "steps": 11},
        }
        report = run_quiet(dict(spec), catalog=make_catalog())
        # (x-3)^2 on [0,10] is maximised at the far boundary
        assert report.search["best"]["value"] == 10
        # probes record the raw metric, not the negated objective
        assert report.search["best"]["objective"] == pytest.approx(50.0)

    def test_ayadi_energy_optimum_is_five_frames(self, tmp_path):
        """The paper-grounded case: golden-section over the Eq. 2
        energy objective recovers the 5-frame segment-size optimum,
        in fewer evaluations than the 16-point sweep."""
        spec = {
            "experiments": ["ayadi_energy"],
            "objective": {"metric": "energy_per_byte_uj",
                          "axis": "frames", "bounds": [1, 16],
                          "integer": True},
        }
        report = run_quiet(dict(spec))
        assert report.search["best"]["value"] == 5
        assert report.search["evaluations"] < 16

    def test_search_needs_single_experiment(self):
        spec = {
            "experiments": ["linear_cell", "seedless_cell"],
            "objective": {"metric": "value", "axis": "x",
                          "bounds": [0, 4], "integer": True},
        }
        with pytest.raises(ValueError, match="exactly one"):
            run_quiet(spec, catalog=make_catalog())


# ----------------------------------------------------------------------
# the paper's Fig. 9 shape as a campaign (CI-gated loss sweep)
# ----------------------------------------------------------------------


class TestFig9Campaign:
    def test_loss_sweep_three_seeds_stable_cis(self):
        report = run_quiet({
            "name": "fig9-loss-sweep",
            "experiments": ["fig9_cell"],
            "grid": {"loss": [0.0, 0.12], "duration": [200]},
            "seeds": [0, 1, 2],
        })
        assert not report.execution["errors"]
        assert len(report.cells) == 2
        by_loss = {c.params["loss"]: c.metrics["reliability"]
                   for c in report.cells}
        for agg in by_loss.values():
            assert agg["n"] == 3
            assert agg["ci_low"] <= agg["mean"] <= agg["ci_high"]
            assert 0.0 <= agg["mean"] <= 1.05
        # TCP stays reliable at moderate loss (Fig. 9a's left half)
        assert by_loss[0.0]["mean"] > 0.9
        assert by_loss[0.12]["mean"] > 0.6
        table = report.grid_table("reliability", rows="loss")
        assert "0.12" in table


# ----------------------------------------------------------------------
# legacy-runner compatibility
# ----------------------------------------------------------------------


class TestLegacyShim:
    def test_single_cell_round_trip(self):
        spec = CampaignSpec.single_cell(
            experiments=["fig4_mss"], quick=True, jobs=2,
            timeout_s=30.0, retries=1, verify=True, metrics=True)
        kwargs = spec.runner_kwargs()
        assert kwargs == {
            "quick": True, "only": ["fig4_mss"], "jobs": 2,
            "collect_metrics": True, "fault_spec": None,
            "verify": True, "timeout": 30.0, "retries": 1,
            "retry_backoff": 2.0,
        }

    def test_grid_spec_refuses_legacy_signature(self):
        spec = CampaignSpec.from_dict(
            {"experiments": ["x"], "grid": {"a": [1, 2]}})
        with pytest.raises(ValueError, match="single-cell"):
            spec.runner_kwargs()

    def test_api_facade_exports(self):
        import repro.api as api

        for name in ("CampaignSpec", "run_campaign", "load_campaign",
                     "ResultStore", "ExperimentCatalog",
                     "CampaignReport", "RunSpec", "default_catalog"):
            assert name in api.__all__ and hasattr(api, name)

    def test_default_catalog_superset_of_registry(self):
        from repro.experiments.runner import (default_catalog,
                                              experiment_registry)

        cat = default_catalog()
        for name in experiment_registry(quick=True):
            assert name in cat
        for cell in ("single_hop_cell", "fig9_cell", "duty_cell",
                     "ayadi_energy"):
            assert cell in cat


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


class TestCampaignCli:
    def _run(self, *args, cwd):
        return subprocess.run(
            [sys.executable, str(TOOLS / "campaign.py"), *args],
            capture_output=True, text=True, cwd=cwd,
            env={**os.environ, "PYTHONPATH": str(SRC)})

    def test_smoke_gate(self, tmp_path):
        out = self._run("--smoke", "--store", str(tmp_path / "store"),
                        cwd=tmp_path)
        assert out.returncode == 0, out.stderr
        assert "byte-identical report" in out.stdout

    def test_dry_run_plan(self, tmp_path):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({
            "experiments": ["ayadi_energy"],
            "grid": {"frames": [3, 5]},
        }))
        out = self._run(str(spec_path), "--dry-run", "--store",
                        str(tmp_path / "store"), cwd=tmp_path)
        assert out.returncode == 0, out.stderr
        assert "2 runs in 2 cells" in out.stdout
        assert "2 to execute" in out.stdout

    def test_invalid_spec_is_loud(self, tmp_path):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({"experiments": ["x"],
                                         "grids": {}}))
        out = self._run(str(spec_path), cwd=tmp_path)
        assert out.returncode == 2
        assert "unknown keys" in out.stderr
