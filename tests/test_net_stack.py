"""End-to-end network layer tests: UDP over 6LoWPAN across hops."""

from repro.experiments.topology import CLOUD_ID, build_chain, build_pair, build_testbed
from repro.net.udp import UdpStack


def test_udp_one_hop_pair():
    net = build_pair(seed=1)
    got = []
    net.nodes[1].udp.bind(7000, lambda d, p: got.append(d.payload))
    net.nodes[0].udp.send(1, 7001, 7000, b"ping", 4)
    net.sim.run(until=1.0)
    assert got == [b"ping"]


def test_udp_large_datagram_fragments_and_reassembles():
    net = build_pair(seed=2)
    got = []
    net.nodes[1].udp.bind(7000, lambda d, p: got.append(d.payload_bytes))
    net.nodes[0].udp.send(1, 7001, 7000, b"x" * 400, 400)
    net.sim.run(until=1.0)
    assert got == [400]
    frags = net.nodes[0].trace.counters.get("lowpan.fragments_sent")
    assert frags >= 5


def test_udp_multihop_chain_forwarding():
    net = build_chain(3, seed=3, with_cloud=False)
    got = []
    net.nodes[0].udp.bind(7000, lambda d, p: got.append(d.payload))
    net.nodes[3].udp.send(0, 7001, 7000, b"up" * 100, 200)
    net.sim.run(until=2.0)
    assert got == [b"up" * 100]
    # the relays forwarded fragments without reassembling
    assert net.nodes[1].trace.counters.get("lowpan.fragments_forwarded") >= 2
    assert net.nodes[1].trace.counters.get("lowpan.reassembled") == 0


def test_udp_to_cloud_and_back():
    net = build_chain(2, seed=4)
    got_cloud = []
    got_node = []
    cloud_udp = UdpStack(net.cloud)
    cloud_udp.bind(5683, lambda d, p: got_cloud.append((d.payload, p.src)))
    net.nodes[2].udp.bind(6000, lambda d, p: got_node.append(d.payload))
    net.nodes[2].udp.send(CLOUD_ID, 6000, 5683, b"reading", 7, dst_is_cloud=True)
    net.sim.run(until=2.0)
    assert got_cloud == [(b"reading", 2)]
    # reply path: cloud -> border -> mesh
    cloud_udp.send(2, 5683, 6000, b"ack!", 4)
    net.sim.run(until=4.0)
    assert got_node == [b"ack!"]


def test_wired_loss_injection_drops_packets():
    net = build_chain(1, seed=5, wired_loss=1.0 - 1e-12)
    got = []
    cloud_udp = UdpStack(net.cloud)
    cloud_udp.bind(5683, lambda d, p: got.append(d))
    net.nodes[1].udp.send(CLOUD_ID, 6000, 5683, b"x", 1, dst_is_cloud=True)
    net.sim.run(until=2.0)
    assert got == []
    assert net.wired.packets_dropped == 1


def test_hop_limit_prevents_loops():
    net = build_chain(2, seed=6, with_cloud=False)
    # create a two-node routing loop for an unknown destination
    net.routing.set_route(1, 99, 2)
    net.routing.set_route(2, 99, 1)
    from repro.net.ipv6 import Ipv6Packet, PROTO_UDP

    pkt = Ipv6Packet(src=1, dst=99, next_header=PROTO_UDP, payload=None,
                     payload_bytes=10, hop_limit=5)
    net.nodes[1].ipv6.route_out(pkt)
    net.sim.run(until=5.0)
    # fragment forwarding decrements the hop limit in the compressed
    # header, so the looping datagram dies after `hop_limit` crossings
    dropped = sum(
        net.nodes[n].trace.counters.get(counter)
        for n in (1, 2)
        for counter in ("ipv6.hop_limit_exceeded", "lowpan.hop_limit_exceeded")
    )
    assert dropped == 1


def test_testbed_builds_with_3_to_5_hop_leaf_routes():
    net = build_testbed(seed=7, sleepy_leaves=False)
    for leaf in net.leaf_ids:
        hops = net.routing.hops_between(leaf, net.border_id)
        assert 3 <= hops <= 5, f"leaf {leaf} at {hops} hops"


def test_testbed_sleepy_leaves_park_downstream_traffic():
    net = build_testbed(seed=8)
    leaf = net.leaf_ids[0]
    parent = net.routing.parent_of(leaf)
    got = []
    net.nodes[leaf].udp.bind(7000, lambda d, p: got.append(d.payload))
    # cloud sends to the sleepy leaf: the frame parks at the parent
    cloud_udp = UdpStack(net.cloud)
    cloud_udp.send(leaf, 5683, 7000, b"down", 4)
    net.sim.run(until=1.0)
    assert got == []
    assert net.nodes[parent].mac.indirect_depth(leaf) == 1
    # once the leaf polls (fast poll), the data arrives
    net.nodes[leaf].sleepy.set_fast_poll(True)
    net.sim.run(until=3.0)
    assert got == [b"down"]


def test_sleepy_leaf_radio_mostly_asleep():
    net = build_testbed(seed=9)
    leaf_node = net.nodes[net.leaf_ids[0]]
    net.sim.run(until=60.0)
    assert leaf_node.radio_duty_cycle() < 0.05


def test_udp_cloud_roundtrip_latency_reflects_wired_delay():
    net = build_chain(1, seed=10)
    times = []
    cloud_udp = UdpStack(net.cloud)

    def echo(d, p):
        cloud_udp.send(p.src, 5683, d.src_port, d.payload, d.payload_bytes)

    cloud_udp.bind(5683, echo)
    t0 = [None]
    got = []

    def on_reply(d, p):
        got.append(net.sim.now - t0[0])

    net.nodes[1].udp.bind(6000, on_reply)
    t0[0] = net.sim.now
    net.nodes[1].udp.send(CLOUD_ID, 6000, 5683, b"t", 1, dst_is_cloud=True)
    net.sim.run(until=2.0)
    assert len(got) == 1
    assert got[0] >= 0.012  # two wired crossings alone are 12 ms
