"""Builder invariants: adjacency shapes, hop counts, determinism.

The topology builders are the foundation every experiment stands on,
so their geometric promises are asserted directly:

* chains are strictly nearest-neighbor (the hidden-terminal physics of
  §7 depends on non-adjacent nodes being out of range);
* the §9 testbed gives every leaf a 3-5 hop route to the border;
* the mesh builders (grid, random) are deterministic in ``seed`` alone
  and always return a fully connected network.
"""

import pytest

from repro.api import (
    CLOUD_ID,
    build_chain,
    build_grid_mesh,
    build_pair,
    build_random_mesh,
    build_testbed,
)


def _adjacency(net):
    """node -> frozenset of hearers, registered nodes only."""
    sets = net.medium.neighbor_sets
    ids = set(net.nodes)
    return {a: frozenset(b for b in sets.get(a, ()) if b in ids)
            for a in ids}


class TestChainInvariants:
    @pytest.mark.parametrize("hops", [1, 2, 3, 5, 8])
    def test_chain_adjacency_is_strictly_nearest_neighbor(self, hops):
        net = build_chain(hops, seed=1)
        adj = _adjacency(net)
        for node in net.nodes:
            expected = {n for n in (node - 1, node + 1) if n in net.nodes}
            assert adj[node] == expected, (
                f"node {node} hears {sorted(adj[node])}, "
                f"expected exactly {sorted(expected)}"
            )

    def test_chain_routes_follow_the_line(self):
        net = build_chain(4, seed=0)
        # every node's route to the cloud steps toward node 0
        for node in range(1, 5):
            assert net.routing.next_hop(node, CLOUD_ID) == node - 1
        assert net.routing.next_hop(0, CLOUD_ID) == CLOUD_ID

    def test_pair_is_symmetric_single_link(self):
        net = build_pair(seed=0)
        adj = _adjacency(net)
        assert adj[0] == {1} and adj[1] == {0}


class TestTestbedInvariants:
    def test_leaf_routes_are_3_to_5_hops(self):
        net = build_testbed(seed=0)
        for leaf in net.leaf_ids:
            hops = net.routing.hops_between(leaf, net.border_id)
            assert 3 <= hops <= 5, f"leaf {leaf}: {hops} hops"

    def test_every_leaf_has_an_in_range_parent(self):
        net = build_testbed(seed=0)
        for leaf in net.leaf_ids:
            parent = net.routing.parent_of(leaf)
            assert net.medium.in_range(leaf, parent)
            assert net.medium.in_range(parent, leaf)


class TestGridMesh:
    def test_hundred_nodes_fully_connected(self):
        net = build_grid_mesh(10, 10, seed=0)
        assert len(net.nodes) == 100
        # reachability: every node routes to the border without loops
        for node in net.nodes:
            if node != net.border_id:
                assert net.routing.hops_between(node, net.border_id) >= 1

    def test_grid_adjacency_is_the_4_neighborhood(self):
        rows = cols = 4
        net = build_grid_mesh(rows, cols, seed=0)
        adj = _adjacency(net)
        for r in range(rows):
            for c in range(cols):
                nid = r * cols + c
                expected = set()
                for dr, dc in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                    rr, cc = r + dr, c + dc
                    if 0 <= rr < rows and 0 <= cc < cols:
                        expected.add(rr * cols + cc)
                assert adj[nid] == expected

    def test_seed_determinism(self):
        a = build_grid_mesh(6, 6, seed=9)
        b = build_grid_mesh(6, 6, seed=9)
        assert a.medium.positions == b.medium.positions
        assert _adjacency(a) == _adjacency(b)

    def test_corner_cases_rejected(self):
        with pytest.raises(ValueError):
            build_grid_mesh(0, 5)
        with pytest.raises(ValueError):
            build_grid_mesh(40, 40)  # collides with CLOUD_ID

    def test_manhattan_route_lengths(self):
        net = build_grid_mesh(10, 10, seed=0)
        # opposite corner: shortest Manhattan path is 9 + 9 hops
        assert net.routing.hops_between(99, 0) == 18
        assert net.routing.hops_between(9, 0) == 9

    def test_disconnected_grid_raises(self):
        # spacing beyond range: no links at all
        with pytest.raises(RuntimeError, match="unreachable"):
            build_grid_mesh(2, 2, seed=0, spacing=50.0)


class TestRandomMesh:
    def test_seed_determinism_and_connectivity(self):
        a = build_random_mesh(60, seed=4)
        b = build_random_mesh(60, seed=4)
        assert a.medium.positions == b.medium.positions
        assert _adjacency(a) == _adjacency(b)
        for node in a.nodes:
            if node != a.border_id:
                assert a.routing.hops_between(node, a.border_id) >= 1

    def test_different_seeds_differ(self):
        a = build_random_mesh(30, seed=1)
        b = build_random_mesh(30, seed=2)
        assert a.medium.positions != b.medium.positions

    def test_hundred_nodes(self):
        net = build_random_mesh(100, seed=7)
        assert len(net.nodes) == 100
        assert net.border_id == 0

    def test_impossible_density_raises(self):
        with pytest.raises(RuntimeError, match="no connected placement"):
            build_random_mesh(50, seed=0, area=1000.0, comm_range=1.0,
                              max_tries=3)

    def test_retry_draws_are_deterministic(self):
        # A placement that needs retries must still be seed-stable:
        # sparse enough that first draws often fail, dense enough to
        # succeed within the try budget.
        kwargs = dict(num_nodes=20, seed=8, area=32.0, comm_range=9.0,
                      max_tries=64)
        a = build_random_mesh(**kwargs)
        b = build_random_mesh(**kwargs)
        assert a.medium.positions == b.medium.positions
