"""Observability layer: metrics registry, trace bus, CI gate plumbing.

Covers the contracts ``docs/observability.md`` promises: registry
semantics (canonical label handling, instrument identity, type safety),
histogram bucketing, snapshot determinism across identical seeded runs,
trace export round-trips, the auto-attach lifecycle, and the
behavioural-vs-perf failure classification in ``tools/bench.py``.
"""

import importlib.util
import json
from pathlib import Path

import pytest

from repro.experiments.topology import build_pair
from repro.experiments.workload import BulkTransfer
from repro.core.simplified import tcplp_params
from repro.core.socket_api import TcpStack
from repro.sim import metrics as metrics_mod
from repro.sim.engine import Simulator
from repro.sim.metrics import (
    DEFAULT_TIME_BUCKETS,
    HistogramMetric,
    MetricsRegistry,
    diff_snapshots,
    metric_key,
)
from repro.sim.trace import TraceBus, read_jsonl

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(autouse=True)
def _auto_attach_off():
    """Never leak auto-attach state between tests."""
    yield
    metrics_mod.auto_attach(False)


class TestRegistrySemantics:
    def test_label_order_is_canonical(self):
        reg = MetricsRegistry()
        a = reg.counter("tcp.retransmits", node=3, kind="rto")
        b = reg.counter("tcp.retransmits", kind="rto", node=3)
        assert a is b
        a.inc()
        snap = reg.snapshot()
        assert snap["counters"]["tcp.retransmits{kind=rto,node=3}"] == 1

    def test_distinct_labels_distinct_instruments(self):
        reg = MetricsRegistry()
        rto = reg.counter("tcp.retransmits", node=1, kind="rto")
        sack = reg.counter("tcp.retransmits", node=1, kind="sack")
        assert rto is not sack
        rto.inc(2)
        sack.inc(5)
        snap = reg.snapshot()["counters"]
        assert snap["tcp.retransmits{kind=rto,node=1}"] == 2
        assert snap["tcp.retransmits{kind=sack,node=1}"] == 5

    def test_metric_key_without_labels(self):
        assert metric_key("sim.events", ()) == "sim.events"

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x", node=1)
        with pytest.raises(TypeError):
            reg.gauge("x", node=1)
        with pytest.raises(TypeError):
            reg.histogram("x", node=1)

    def test_gauge_holds_last_value(self):
        reg = MetricsRegistry()
        g = reg.gauge("tcp.cwnd", node=0)
        g.set(2940)
        g.set(1470)
        assert reg.snapshot()["gauges"]["tcp.cwnd{node=0}"] == 1470

    def test_collectors_run_at_snapshot_time(self):
        reg = MetricsRegistry()
        calls = []

        def collect(registry):
            calls.append(1)
            registry.gauge("pulled.value").set(42)

        reg.register_collector(collect)
        assert calls == []
        snap = reg.snapshot()
        assert calls == [1]
        assert snap["gauges"]["pulled.value"] == 42


class TestHistogram:
    def test_bucketing_and_overflow(self):
        h = HistogramMetric(bounds=(0.01, 0.1, 1.0))
        for v in (0.005, 0.01, 0.05, 0.5, 5.0):
            h.observe(v)
        out = h.export()
        # upper edges are inclusive (bisect_right)
        assert out["buckets"] == {"0.01": 2, "0.1": 1, "1.0": 1, "+inf": 1}
        assert out["count"] == 5
        assert out["sum"] == pytest.approx(5.565)

    def test_default_buckets_span_mac_to_rto_scales(self):
        assert DEFAULT_TIME_BUCKETS[0] <= 0.001
        assert DEFAULT_TIME_BUCKETS[-1] >= 60.0

    def test_empty_bounds_rejected(self):
        with pytest.raises(ValueError):
            HistogramMetric(bounds=())

    def test_buckets_apply_on_first_creation_only(self):
        reg = MetricsRegistry()
        first = reg.histogram("h", buckets=(1.0, 2.0))
        again = reg.histogram("h", buckets=(5.0,))
        assert again is first
        assert first.bounds == (1.0, 2.0)


class TestDiffSnapshots:
    def test_equal_snapshots_no_diff(self):
        snap = {"counters": {"a": 1}, "gauges": {}, "histograms": {}}
        assert diff_snapshots(snap, snap) == []

    def test_changed_appeared_disappeared(self):
        golden = {"counters": {"a": 1, "b": 2}, "gauges": {}}
        current = {"counters": {"a": 3, "c": 4}, "gauges": {}}
        diffs = diff_snapshots(golden, current)
        assert any("a changed" in d for d in diffs)
        assert any("b disappeared" in d for d in diffs)
        assert any("c appeared" in d for d in diffs)


class TestDisabledByDefault:
    def test_simulator_has_no_registry(self):
        sim = Simulator()
        assert sim.metrics is None
        assert sim.trace_bus is None

    def test_layers_tolerate_missing_registry(self):
        # a full scenario with observability off must not touch metrics
        net = build_pair(seed=1)
        assert net.sim.metrics is None


class TestAutoAttach:
    def test_each_simulator_gets_private_registry(self):
        metrics_mod.auto_attach(True)
        sim_a, sim_b = Simulator(), Simulator()
        assert sim_a.metrics is not None
        assert sim_a.metrics is not sim_b.metrics
        attached = metrics_mod.drain_attached()
        assert [reg for reg, _ in attached] == [sim_a.metrics, sim_b.metrics]

    def test_drain_clears(self):
        metrics_mod.auto_attach(True)
        Simulator()
        assert len(metrics_mod.drain_attached()) == 1
        assert metrics_mod.drain_attached() == []

    def test_disable_stops_attaching(self):
        metrics_mod.auto_attach(True)
        metrics_mod.auto_attach(False)
        assert Simulator().metrics is None

    def test_capture_trace_creates_bus(self):
        metrics_mod.auto_attach(True, capture_trace=True, trace_capacity=7)
        sim = Simulator()
        assert sim.trace_bus is not None
        assert sim.trace_bus.capacity == 7


class TestTraceBus:
    def _bus(self, capacity=None):
        sim = Simulator()
        return sim, TraceBus(sim, capacity=capacity)

    def test_events_stamped_with_sim_time(self):
        sim, bus = self._bus()
        sim.schedule(
            1.5, lambda: bus.emit("mac", 2, "link_retry", attempt=1))
        sim.run(until=2.0)
        (ev,) = bus.events
        assert (ev.time, ev.layer, ev.node, ev.kind) == (
            1.5, "mac", 2, "link_retry")
        assert ev.fields == {"attempt": 1}

    def test_ring_buffer_keeps_most_recent(self):
        _, bus = self._bus(capacity=3)
        for i in range(10):
            bus.emit("phy", 0, "tx", n=i)
        assert bus.emitted == 10
        assert [ev.fields["n"] for ev in bus.events] == [7, 8, 9]

    def test_select_filters(self):
        _, bus = self._bus()
        bus.emit("phy", 0, "tx")
        bus.emit("mac", 0, "link_retry")
        bus.emit("mac", 1, "link_retry")
        assert len(bus.select(layer="mac")) == 2
        assert len(bus.select(layer="mac", node=1)) == 1
        assert len(bus.select(kind="tx")) == 1

    def test_jsonl_round_trip(self, tmp_path):
        _, bus = self._bus()
        bus.emit("tcp", 4, "retransmit", seq=1000, kind="sack", bytes=98)
        bus.emit("net", 2, "queue_drop", src=1, dst=0)
        path = tmp_path / "trace.jsonl"
        assert bus.to_jsonl(path) == 2
        assert read_jsonl(path) == bus.events

    def test_csv_export(self, tmp_path):
        _, bus = self._bus()
        bus.emit("phy", 0, "collision", sender=3)
        path = tmp_path / "trace.csv"
        assert bus.to_csv(path) == 1
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "t,layer,node,kind,fields"
        assert "collision" in lines[1]

    def test_clear_keeps_emitted_total(self):
        _, bus = self._bus()
        bus.emit("phy", 0, "tx")
        bus.clear()
        assert len(bus) == 0 and bus.emitted == 1


def _run_instrumented_transfer(duration=8.0):
    """One small seeded end-to-end run with observability attached."""
    metrics_mod.auto_attach(True, capture_trace=True, trace_capacity=None)
    try:
        net = build_pair(seed=7)
        params = tcplp_params()
        node0, node1 = net.nodes[0], net.nodes[1]
        src = TcpStack(net.sim, node1.ipv6, 1, cpu=node1.radio.cpu)
        dst = TcpStack(net.sim, node0.ipv6, 0, cpu=node0.radio.cpu)
        xfer = BulkTransfer(net.sim, src, dst, receiver_id=0, params=params,
                            receiver_params=params)
        xfer.measure(2.0, duration)
        attached = metrics_mod.drain_attached()
    finally:
        metrics_mod.auto_attach(False)
    assert len(attached) == 1
    return attached[0]


class TestEndToEnd:
    def test_hot_layers_populate_metrics(self):
        registry, bus = _run_instrumented_transfer()
        snap = registry.snapshot()
        families = {key.split("{")[0] for section in snap.values()
                    for key in section}
        for expected in ("phy.tx", "phy.deliveries", "mac.frames_tx",
                         "lowpan.datagrams_sent", "net.delivered",
                         "tcp.segs_sent", "tcp.cwnd", "tcp.rtt_seconds",
                         "phy.radio_duty_cycle"):
            assert expected in families, expected
        assert bus.emitted > 0

    def test_snapshot_determinism_two_seeded_runs(self):
        reg_a, bus_a = _run_instrumented_transfer()
        reg_b, bus_b = _run_instrumented_transfer()
        blob_a = json.dumps(reg_a.snapshot(), sort_keys=True)
        blob_b = json.dumps(reg_b.snapshot(), sort_keys=True)
        assert blob_a == blob_b  # byte-identical
        assert bus_a.events == bus_b.events

    def test_trace_golden_round_trip(self, tmp_path):
        _, bus = _run_instrumented_transfer()
        golden = tmp_path / "golden.jsonl"
        bus.to_jsonl(golden)
        assert read_jsonl(golden) == bus.events


def _load_bench():
    spec = importlib.util.spec_from_file_location(
        "bench_under_test", REPO_ROOT / "tools" / "bench.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestBenchClassification:
    def test_behavioural_vs_perf_split(self):
        bench = _load_bench()
        baseline = {"results": {"s": {
            "events": 100, "frames_delivered": 10, "goodput_kbps": 5.0,
            "events_per_sec": 1000,
        }}}
        # behavioural drift only
        behavioural, perf = bench.compare_to_baseline(
            {"s": {"events": 101, "frames_delivered": 10,
                   "goodput_kbps": 5.0, "events_per_sec": 1000}},
            baseline, tolerance=0.30)
        assert behavioural and not perf
        # perf regression only
        behavioural, perf = bench.compare_to_baseline(
            {"s": {"events": 100, "frames_delivered": 10,
                   "goodput_kbps": 5.0, "events_per_sec": 100}},
            baseline, tolerance=0.30)
        assert perf and not behavioural

    def test_smoke_exit_codes(self, tmp_path, monkeypatch):
        bench = _load_bench()
        base_doc = {"results": {"s": {
            "events": 100, "frames_delivered": 10, "goodput_kbps": 5.0,
            "events_per_sec": 1000,
        }}}
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text(json.dumps(base_doc))
        monkeypatch.setattr(bench, "BASELINE_PATH", baseline_path)

        def fake_run_all(smoke, trials, only=None, results=None,
                         accel=False, fidelity="full"):
            return results

        drifted = {"s": {"events": 101, "frames_delivered": 10,
                         "goodput_kbps": 5.0, "events_per_sec": 1000}}
        slow = {"s": {"events": 100, "frames_delivered": 10,
                      "goodput_kbps": 5.0, "events_per_sec": 100}}
        clean = {"s": dict(base_doc["results"]["s"])}

        import functools
        for results, expected in ((clean, 0),
                                  (drifted, bench.EXIT_BEHAVIOURAL),
                                  (slow, bench.EXIT_PERF)):
            monkeypatch.setattr(
                bench, "run_all",
                functools.partial(fake_run_all, results=results))
            assert bench.main(["--smoke"]) == expected

    def test_metrics_golden_compare(self):
        bench = _load_bench()
        snap = {"counters": {"a": 1}, "gauges": {}, "histograms": {}}
        golden = {"scen": [snap]}
        assert bench.compare_metrics_to_golden({"scen": [snap]}, golden) == []
        drifted = {"counters": {"a": 2}, "gauges": {}, "histograms": {}}
        diffs = bench.compare_metrics_to_golden({"scen": [drifted]}, golden)
        assert diffs and "a changed" in diffs[0]
        missing = bench.compare_metrics_to_golden({"new": [snap]}, golden)
        assert missing and "not in metrics golden" in missing[0]

    def test_checked_in_golden_is_valid_json(self):
        golden = json.loads(
            (REPO_ROOT / "benchmarks" / "perf"
             / "metrics_golden.json").read_text())
        assert set(golden) == {"one_hop_bulk", "three_hop_hidden",
                               "duty_cycled_polling", "loss_sweep",
                               "chaos_faults", "dense_mesh",
                               "campaign_grid"}
        for snaps in golden.values():
            for snap in snaps:
                assert set(snap) == {"counters", "gauges", "histograms"}


class TestRunnerMetricsOut:
    def test_metrics_out_writes_snapshots(self, tmp_path):
        from repro.experiments.runner import main as runner_main

        out = tmp_path / "r.json"
        metrics_out = tmp_path / "metrics.json"
        code = runner_main(["--quick", "-o", str(out),
                            "--only", "static_tables",
                            "--metrics-out", str(metrics_out)])
        assert code == 0
        snaps = json.loads(metrics_out.read_text())
        # static_tables builds no simulator: present, but empty
        assert snaps == {"static_tables": []}
        # and the main document must not carry the snapshots
        assert "metrics_snapshots" not in json.loads(
            out.read_text())["_meta"]
