"""Checkpoint/resume determinism tests (repro.sim.checkpoint).

The contract under test: restoring a snapshot taken mid-run and
running to the original horizon reproduces the original event trace
byte-identically — on a quiet chain and under chaos fault injection,
in memory and through the pickle wire format.
"""

import pytest

from repro.core.simplified import tcplp_params
from repro.core.socket_api import TcpStack
from repro.experiments.topology import build_chain
from repro.experiments.workload import BulkTransfer
from repro.faults import FaultInjector, FaultSchedule
from repro.sim.checkpoint import (
    Checkpoint,
    CheckpointError,
    CheckpointManager,
    TraceHook,
)
from repro.sim.engine import Simulator

CHAOS_SPEC = {
    "name": "checkpoint-chaos",
    "faults": [
        {"kind": "bursty_loss", "p_good_bad": 0.05, "p_bad_good": 0.3},
        {"kind": "frame_corruption", "rate": 0.01},
    ],
}


def build_transfer(seed=11, hops=2, fault_spec=None):
    """A bulk transfer over an N-hop chain, optionally under faults."""
    net = build_chain(hops, seed=seed, with_cloud=False)
    for n in net.nodes.values():
        n.mac.params.retry_delay = 0.04
    injector = None
    if fault_spec is not None:
        injector = FaultInjector(
            net, FaultSchedule.from_dict(fault_spec)).arm()
    params = tcplp_params(window_segments=4)
    node_s, node_r = net.nodes[hops], net.nodes[0]
    src = TcpStack(net.sim, node_s.ipv6, hops, cpu=node_s.radio.cpu)
    dst = TcpStack(net.sim, node_r.ipv6, 0, cpu=node_r.radio.cpu)
    xfer = BulkTransfer(net.sim, src, dst, receiver_id=0,
                        params=params, receiver_params=params)
    return net, xfer, injector


def resume_and_trace(cp, until):
    """Restore ``cp``, run to ``until``, return the restored trace."""
    sim2, _roots = cp.restore()
    hook = TraceHook().attach(sim2)
    sim2.run(until=until)
    return hook.entries


# ======================================================================
# Byte-identical resume
# ======================================================================
class TestResumeDeterminism:
    def test_resume_trace_identical_on_chain(self):
        net, xfer, _ = build_transfer()
        hook = TraceHook().attach(net.sim)
        manager = CheckpointManager(
            net.sim, roots={"xfer": xfer}, interval=5.0).start()
        net.sim.run(until=12.0)
        cp = manager.latest()
        assert cp is not None and cp.time == pytest.approx(10.0)
        reference = hook.suffix_after(cp)
        assert len(reference) > 100  # the tail is a real workload
        assert resume_and_trace(cp, 12.0) == reference

    def test_resume_trace_identical_under_chaos(self):
        net, xfer, injector = build_transfer(seed=23,
                                             fault_spec=CHAOS_SPEC)
        hook = TraceHook().attach(net.sim)
        manager = CheckpointManager(
            net.sim, roots={"xfer": xfer}, interval=5.0).start()
        net.sim.run(until=15.0)
        assert injector.summary()  # the chaos actually happened
        cp = manager.nearest_before(12.0)
        assert cp.time == pytest.approx(10.0)
        assert resume_and_trace(cp, 15.0) == hook.suffix_after(cp)

    def test_pickle_round_trip_resumes_identically(self, tmp_path):
        net, xfer, _ = build_transfer(seed=31)
        hook = TraceHook().attach(net.sim)
        manager = CheckpointManager(
            net.sim, roots={"xfer": xfer}, interval=5.0).start()
        net.sim.run(until=12.0)
        cp = manager.latest()
        path = tmp_path / "snap.ckpt"
        nbytes = cp.save(path)
        assert nbytes == path.stat().st_size > 0
        loaded = Checkpoint.load(path)
        assert (loaded.time, loaded.seq) == (cp.time, cp.seq)
        assert loaded.boundary == cp.boundary
        assert resume_and_trace(loaded, 12.0) == hook.suffix_after(cp)

    def test_restores_are_isolated(self):
        net, xfer, _ = build_transfer(seed=7)
        manager = CheckpointManager(
            net.sim, roots={"xfer": xfer}, interval=5.0).start()
        net.sim.run(until=11.0)
        cp = manager.latest()
        sim_a, roots_a = cp.restore()
        sim_b, roots_b = cp.restore()
        sim_a.run(until=14.0)
        # running one restore moves neither its sibling nor the original
        assert sim_b.now == pytest.approx(cp.time)
        assert net.sim.now == pytest.approx(11.0)
        assert roots_a["xfer"] is not roots_b["xfer"]
        assert roots_a["xfer"] is not xfer

    def test_restored_manager_resumes_checkpointing(self):
        net, xfer, _ = build_transfer(seed=7)
        manager = CheckpointManager(
            net.sim, roots={"xfer": xfer}, interval=5.0).start()
        net.sim.run(until=11.0)
        sim2, _roots = manager.latest().restore()
        clone = next(
            ev.fn.__self__ for _t, _s, ev in sim2._queue
            if not ev.cancelled
            and isinstance(getattr(ev.fn, "__self__", None),
                           CheckpointManager))
        # the ring of past snapshots is excluded from the snapshot...
        assert clone.taken == 0 and not clone.checkpoints
        sim2.run(until=21.0)
        # ...but the cadence survives: the clone re-checkpoints on its own
        assert clone.taken == 2
        assert clone.latest().time == pytest.approx(20.0)


# ======================================================================
# Boundary semantics and error paths
# ======================================================================
class TestBoundariesAndErrors:
    def test_manual_capture_has_no_boundary(self):
        net, xfer, _ = build_transfer()
        hook = TraceHook().attach(net.sim)
        cp = Checkpoint.capture(net.sim, {"xfer": xfer})
        assert cp.boundary is None
        with pytest.raises(ValueError, match="no trace boundary"):
            hook.suffix_after(cp)

    def test_capture_preserves_on_event_hook(self):
        net, xfer, _ = build_transfer()
        hook = TraceHook().attach(net.sim)
        cp = Checkpoint.capture(net.sim, {"xfer": xfer})
        assert net.sim.on_event is hook  # masked only during the copy
        sim2, _ = cp.restore()
        assert sim2.on_event is None  # and never part of the snapshot

    def test_lambda_in_queue_is_not_serialisable(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        cp = Checkpoint.capture(sim)
        with pytest.raises(CheckpointError, match="bound methods"):
            cp.to_bytes()

    def test_from_bytes_rejects_garbage_header(self):
        import pickle

        data = pickle.dumps(("not-a-checkpoint", 1, 2, None)) + b"tail"
        with pytest.raises(CheckpointError, match="bad header"):
            Checkpoint.from_bytes(data)

    def test_manager_validates_arguments(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            CheckpointManager(sim, interval=0.0)
        with pytest.raises(ValueError):
            CheckpointManager(sim, keep=0)

    def test_ring_is_bounded_and_nearest_before_reads_it(self):
        net, xfer, _ = build_transfer()
        manager = CheckpointManager(
            net.sim, roots={"xfer": xfer}, interval=1.0, keep=2).start()
        net.sim.run(until=6.5)
        assert manager.taken == 6
        assert len(manager.checkpoints) == 2
        times = [cp.time for cp in manager.checkpoints]
        assert times == pytest.approx([5.0, 6.0])
        assert manager.nearest_before(6.5).time == pytest.approx(6.0)
        assert manager.nearest_before(5.5).time == pytest.approx(5.0)
        assert manager.nearest_before(4.0) is None  # dropped from the ring
        manager.stop()
        assert manager.latest().time == pytest.approx(6.0)
