"""Process-chaos tests: schedule validation, the WorkerChaos hook, and
the self-healing acceptance pin — a sharded run with workers SIGKILLed
and SIGSTOPped mid-campaign must produce merged results byte-identical
to an unkilled run.
"""

import json

import pytest

from repro.faults import ProcessFaultSchedule, WorkerChaos, run_sharded_chaos
from repro.sim.shard import default_gate_recipe
from repro.verify import check_gateway_quiescent


class TestProcessFaultSchedule:
    def test_valid_spec_roundtrips(self):
        spec = {
            "name": "mixed",
            "faults": [
                {"kind": "worker_kill", "shard": 1, "window": 3},
                {"kind": "worker_stall", "shard": 0, "window": 10,
                 "resume_after": 5.0},
                {"kind": "client_reset", "at": 0.5, "count": 4},
                {"kind": "slow_loris", "at": 1.0},
                {"kind": "partial_write", "at": 1.5, "bytes": 16},
                {"kind": "accept_storm", "at": 2.0, "connections": 100},
            ],
        }
        sched = ProcessFaultSchedule.from_dict(spec)
        assert len(sched) == 6
        # defaults filled in
        assert sched.by_kind("slow_loris")[0]["hold"] == 10.0
        assert sched.by_kind("slow_loris")[0]["prelude_bytes"] == 4
        assert sched.by_kind("client_reset")[0]["count"] == 4
        rebuilt = ProcessFaultSchedule.from_dict(sched.to_dict())
        assert rebuilt.to_dict() == sched.to_dict()

    def test_split_and_ordering(self):
        sched = ProcessFaultSchedule([
            {"kind": "accept_storm", "at": 3.0, "connections": 10},
            {"kind": "worker_kill", "shard": 1, "window": 40},
            {"kind": "client_reset", "at": 1.0},
            {"kind": "worker_stall", "shard": 0, "window": 4},
        ])
        assert [f["window"] for f in sched.worker_faults()] == [4, 40]
        assert [f["at"] for f in sched.gateway_ops()] == [1.0, 3.0]

    def test_bare_list_accepted(self):
        sched = ProcessFaultSchedule.from_dict(
            [{"kind": "worker_kill", "shard": 0, "window": 1}])
        assert len(sched) == 1

    def test_from_json(self, tmp_path):
        path = tmp_path / "chaos.json"
        path.write_text(json.dumps({
            "faults": [{"kind": "client_reset", "at": 0.0}]}))
        assert len(ProcessFaultSchedule.from_json(path)) == 1

    @pytest.mark.parametrize("entry,message", [
        ({"kind": "disk_full"}, "unknown kind"),
        ({"kind": "worker_kill", "shard": 0}, "missing 'window'"),
        ({"kind": "worker_kill", "shard": 0, "window": 1, "x": 2},
         "unknown fields"),
        ({"kind": "worker_kill", "shard": 0.5, "window": 1},
         "must be an integer"),
        ({"kind": "client_reset", "at": -1.0}, "must be >= 0"),
        ({"kind": "client_reset", "at": 0.0, "count": 0}, "must be >= 1"),
        ({"kind": "accept_storm", "at": 0.0}, "missing 'connections'"),
        ("not-a-dict", "must be an object"),
    ])
    def test_invalid_faults_rejected(self, entry, message):
        with pytest.raises(ValueError, match=message):
            ProcessFaultSchedule([entry])

    def test_invalid_top_level_rejected(self):
        with pytest.raises(ValueError, match="'faults' list"):
            ProcessFaultSchedule.from_dict({"name": "x"})
        with pytest.raises(ValueError, match="unknown top-level"):
            ProcessFaultSchedule.from_dict({"faults": [], "extra": 1})


class _FakeProc:
    def __init__(self):
        self.killed = False
        self.pid = -1  # never a real pid

    def kill(self):
        self.killed = True


class _FakeSharded:
    def __init__(self, shards=2):
        self.shards = shards
        self._procs = [_FakeProc() for _ in range(shards)]


class TestWorkerChaosHook:
    def test_fires_once_at_or_after_its_window(self):
        sched = ProcessFaultSchedule(
            [{"kind": "worker_kill", "shard": 1, "window": 5}])
        hook = WorkerChaos(sched)
        sharded = _FakeSharded()
        hook(sharded, 4, 0.4)
        assert not sharded._procs[1].killed
        hook(sharded, 7, 0.7)  # windows can jump past the target
        assert sharded._procs[1].killed
        assert hook.fired == [{"kind": "worker_kill", "shard": 1,
                               "window": 7, "t": 0.7}]
        hook(sharded, 8, 0.8)  # fires exactly once
        assert len(hook.fired) == 1

    def test_out_of_range_shard_rejected(self):
        sched = ProcessFaultSchedule(
            [{"kind": "worker_kill", "shard": 9, "window": 0}])
        with pytest.raises(ValueError, match="out of range"):
            WorkerChaos(sched)(_FakeSharded(shards=2), 0, 0.0)


class _FakeStack:
    def __init__(self, live):
        self.live = live

    def active_connections(self):
        return self.live


class _FakeGateway:
    def __init__(self, bridges=0, pinned=0, live=0):
        self._bridges = bridges
        self._pinned = pinned
        self.tcp_stack = _FakeStack(live)

    def active_bridges(self):
        return self._bridges

    def splice_used(self):
        return self._pinned


class TestCheckGatewayQuiescent:
    def test_clean_gateway_passes(self):
        assert check_gateway_quiescent(_FakeGateway()) == []

    def test_each_leak_is_its_own_violation(self):
        violations = check_gateway_quiescent(
            _FakeGateway(bridges=2, pinned=512, live=1))
        assert len(violations) == 3
        assert any("bridged" in v for v in violations)
        assert any("splice" in v for v in violations)
        assert any("TCP stack" in v for v in violations)


class TestSelfHealingByteIdentity:
    """The PR's acceptance pin: kill AND hang workers mid-campaign;
    the healed run's merged trace/metrics/flows must be byte-identical
    to a clean run.  The early kill replays from the fresh build
    payload; the late stall lands past a ``heal_every`` rebase, so it
    replays from a checkpoint base — both heal paths in one campaign.
    """

    def test_killed_and_stalled_workers_heal_byte_identical(self):
        schedule = ProcessFaultSchedule.from_dict({
            "name": "test-heal",
            "faults": [
                {"kind": "worker_kill", "shard": 1, "window": 3},
                # resume_after far past worker_timeout: the heartbeat
                # timeout must declare the worker hung and respawn it
                {"kind": "worker_stall", "shard": 0, "window": 600,
                 "resume_after": 60.0},
            ],
        })
        report = run_sharded_chaos(
            default_gate_recipe(), 2, schedule, warmup=1.0, duration=2.0,
            heal_every=200, worker_timeout=2.0)
        assert report["mismatches"] == []
        assert report["faults_scheduled"] == 2
        assert len(report["faults_fired"]) == 2
        assert len(report["respawns"]) == 2
        kill, stall = report["respawns"]
        assert kill["shard"] == 1 and stall["shard"] == 0
        # fresh-base replay covers every window up to the kill ...
        assert kill["windows_replayed"] == 3
        # ... while the checkpoint rebase bounds the stall's replay
        assert stall["windows_replayed"] < 600
        assert "no reply" in stall["reason"]  # the hung-worker path
        assert report["ok"]
