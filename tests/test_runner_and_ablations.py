"""Batch runner plumbing and ablation-harness smoke tests."""

import json

import pytest

from repro.experiments.exp_ablations import ABLATIONS, run_ablation
from repro.experiments.runner import experiment_registry, main, run_all


class TestAblationHarness:
    def test_all_named_ablations_runnable(self):
        row = run_ablation("full TCPlp", scenario="clean-1hop",
                           duration=10.0)
        assert row["goodput_kbps"] > 0
        assert row["scenario"] == "clean-1hop"

    def test_window_ablation_shrinks_buffers(self):
        from repro.core.simplified import tcplp_params

        mutate = ABLATIONS["1-segment window"]
        p = mutate(tcplp_params())
        assert p.send_buffer == p.mss
        assert p.recv_buffer == p.mss

    def test_full_profile_unmutated(self):
        from repro.core.simplified import tcplp_params

        assert ABLATIONS["full TCPlp"](tcplp_params()) == tcplp_params()

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError):
            run_ablation("full TCPlp", scenario="marsnet")

    def test_lossy_scenario_produces_segment_loss(self):
        row = run_ablation("full TCPlp", scenario="lossy-1hop",
                           duration=30.0, frame_loss=0.15)
        assert row["segment_loss"] > 0.03


class TestRunner:
    def test_registry_covers_every_table_and_figure(self):
        names = set(experiment_registry(quick=True))
        for required in (
            "static_tables", "fig4_mss", "fig5_buffer", "table7_stacks",
            "fig6a_one_hop", "fig6bcd_three_hops", "fig7a_cwnd",
            "eq2_validation", "sec72_hops", "fig8_batching", "fig9_loss",
            "fig10_daylong_tcp", "table8", "table9_fairness",
            "appendixC_fig12", "appendixC_adaptive",
        ):
            assert required in names, required

    def test_run_all_subset_and_error_isolation(self):
        results = run_all(quick=True, only=["static_tables"],
                          progress=lambda *_: None)
        assert set(results) == {"static_tables"}
        assert results["static_tables"]["memory_model"][
            "active_socket_bytes"] > 0

    def test_broken_experiment_reported_not_raised(self, monkeypatch):
        import repro.experiments.runner as runner_mod

        registry = runner_mod.experiment_registry(True)

        def boom():
            raise RuntimeError("injected")

        monkeypatch.setattr(
            runner_mod, "experiment_registry",
            lambda quick: {"boom": boom, "static_tables": registry["static_tables"]},
        )
        results = runner_mod.run_all(quick=True, progress=lambda *_: None)
        assert results["boom"] == {"error": "RuntimeError: injected"}
        assert "memory_model" in results["static_tables"]

    def test_cli_writes_json(self, tmp_path, capsys):
        out = tmp_path / "r.json"
        code = main(["--quick", "-o", str(out), "--only", "static_tables"])
        assert code == 0
        data = json.loads(out.read_text())
        assert "static_tables" in data
        meta = data["_meta"]
        assert meta["errors"] == []
        assert set(meta["wall_times_s"]) == {"static_tables"}

    def test_parallel_jobs_match_serial_run(self, tmp_path):
        """--jobs N must produce the same document as --jobs 1 apart
        from the recorded wall times (experiments are independent and
        internally seeded)."""
        subset = ["static_tables", "eq2_validation", "sec72_hops"]
        serial = tmp_path / "serial.json"
        parallel = tmp_path / "parallel.json"
        assert main(["--quick", "-o", str(serial), "--only", *subset]) == 0
        assert main(["--quick", "-o", str(parallel), "--only", *subset,
                     "--jobs", "4"]) == 0
        a = json.loads(serial.read_text())
        b = json.loads(parallel.read_text())
        meta_a, meta_b = a.pop("_meta"), b.pop("_meta")
        assert a == b
        assert list(a) == subset  # registry order, not completion order
        assert (meta_a["jobs"], meta_b["jobs"]) == (1, 4)

    def test_worker_failure_propagates_to_exit_code(self, tmp_path,
                                                    monkeypatch):
        import repro.experiments.runner as runner_mod

        registry = runner_mod.experiment_registry(True)

        def boom():
            raise RuntimeError("injected")

        monkeypatch.setattr(
            runner_mod, "experiment_registry",
            lambda quick: {"boom": boom,
                           "static_tables": registry["static_tables"]},
        )
        out = tmp_path / "r.json"
        code = runner_mod.main(["--quick", "-o", str(out)])
        assert code == 1
        data = json.loads(out.read_text())
        assert data["boom"] == {"error": "RuntimeError: injected"}
        assert data["_meta"]["errors"] == ["boom"]
