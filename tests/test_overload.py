"""Overload-protection tests: the admission-control primitives on fake
clocks, seeded backoff jitter, and the shedding paths end to end over
real loopback sockets (capacity, rate, breaker, deadlines, splice
budget) — every refusal must be explicit in ``gw.shed``.
"""

import asyncio

import pytest

from repro.experiments.topology import build_chain
from repro.gateway import (
    CircuitBreaker,
    Gateway,
    GatewayLimits,
    MoteBinding,
    SessionBackoff,
    SpliceBudget,
    TokenBucket,
    install_echo,
    install_sink,
)


class FakeClock:
    def __init__(self, t=100.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt
        return self.t


class TestTokenBucket:
    def test_burst_spends_then_rate_refills(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=3, clock=clock)
        assert [bucket.try_take() for _ in range(4)] == [True] * 3 + [False]
        clock.advance(0.5)
        assert not bucket.try_take()  # half a token is not a token
        clock.advance(0.5)
        assert bucket.try_take()
        assert not bucket.try_take()

    def test_refill_clips_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=2, clock=clock)
        bucket.try_take(2)
        clock.advance(60.0)  # an hour of tokens does not accumulate
        assert bucket.try_take(2)
        assert not bucket.try_take()

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0)


class TestCircuitBreaker:
    def test_opens_at_threshold_and_cools_down(self):
        clock = FakeClock()
        b = CircuitBreaker(threshold=3, cooldown=10.0, clock=clock)
        for _ in range(2):
            b.record_failure()
        assert b.state == "closed" and b.allow()
        b.record_failure()
        assert b.state == "open" and not b.allow()
        clock.advance(9.0)
        assert not b.allow()
        clock.advance(1.0)
        assert b.state == "half_open"

    def test_half_open_admits_exactly_one_probe(self):
        clock = FakeClock()
        b = CircuitBreaker(threshold=1, cooldown=5.0, clock=clock)
        b.record_failure()
        clock.advance(5.0)
        assert b.allow()       # the probe
        assert not b.allow()   # everyone else still refused
        b.record_success()
        assert b.state == "closed" and b.allow()

    def test_failed_probe_reopens_for_a_fresh_cooldown(self):
        clock = FakeClock()
        b = CircuitBreaker(threshold=2, cooldown=5.0, clock=clock)
        b.record_failure()
        b.record_failure()
        clock.advance(5.0)
        assert b.allow()
        b.record_failure()     # one probe failure, not `threshold`
        assert b.state == "open" and not b.allow()
        clock.advance(5.0)
        assert b.allow()

    def test_success_resets_the_failure_streak(self):
        b = CircuitBreaker(threshold=2, clock=FakeClock())
        b.record_failure()
        b.record_success()
        b.record_failure()     # streak broken: still closed
        assert b.state == "closed"

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown=-1.0)


class TestSpliceBudget:
    def test_acquire_counts_even_past_the_cap(self):
        budget = SpliceBudget(100)
        assert budget.acquire(100)
        assert not budget.acquire(1)  # over — but the byte is counted
        assert budget.used == 101
        assert budget.exhausted

    def test_resume_threshold(self):
        budget = SpliceBudget(100, resume_ratio=0.75)
        budget.acquire(101)
        assert not budget.should_resume
        budget.release(26)
        assert budget.should_resume
        budget.release(1000)    # release clamps at zero
        assert budget.used == 0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            SpliceBudget(0)
        with pytest.raises(ValueError):
            SpliceBudget(100, resume_ratio=1.0)


class TestGatewayLimits:
    def test_defaults_disable_everything(self):
        limits = GatewayLimits()
        assert limits.max_connections is None
        assert limits.accept_rate is None
        assert limits.splice_budget is None
        assert limits.breaker_threshold is None
        assert not limits.needs_reaper

    def test_deadlines_demand_a_reaper(self):
        assert GatewayLimits(idle_timeout=5.0).needs_reaper
        assert GatewayLimits(establish_timeout=5.0).needs_reaper

    @pytest.mark.parametrize("kwargs", [
        {"max_connections": 0},
        {"accept_rate": 0.0},
        {"accept_burst": 0},
        {"establish_timeout": 0.0},
        {"idle_timeout": -1.0},
        {"splice_budget": 0},
        {"breaker_threshold": 0},
        {"breaker_cooldown": -1.0},
        {"backlog": 0},
        {"high_water": 100, "low_water": 100},
        {"reap_interval": 0.0},
    ])
    def test_invalid_policy_rejected(self, kwargs):
        with pytest.raises(ValueError):
            GatewayLimits(**kwargs)


class TestSeededBackoffJitter:
    def test_same_seed_same_delays(self):
        a = SessionBackoff(base=1.0, factor=2.0, ceiling=64.0,
                           max_attempts=6, jitter=1.0, seed=42)
        b = SessionBackoff(base=1.0, factor=2.0, ceiling=64.0,
                           max_attempts=6, jitter=1.0, seed=42)
        assert [a.next_delay() for _ in range(6)] == \
               [b.next_delay() for _ in range(6)]

    def test_different_seeds_decorrelate(self):
        a = SessionBackoff(base=1.0, max_attempts=5, jitter=1.0, seed=1)
        b = SessionBackoff(base=1.0, max_attempts=5, jitter=1.0, seed=2)
        assert [a.next_delay() for _ in range(5)] != \
               [b.next_delay() for _ in range(5)]

    def test_full_jitter_stays_under_the_exponential_envelope(self):
        b = SessionBackoff(base=0.5, factor=2.0, ceiling=4.0,
                           max_attempts=4, jitter=1.0, seed=7)
        for envelope in (0.5, 1.0, 2.0, 4.0):
            delay = b.next_delay()
            assert 0.0 <= delay <= envelope

    def test_partial_jitter_keeps_a_floor(self):
        b = SessionBackoff(base=1.0, factor=1.0, max_attempts=20,
                           jitter=0.25, seed=3)
        for _ in range(20):
            assert 0.75 <= b.next_delay() <= 1.0

    def test_zero_jitter_is_exact(self):
        b = SessionBackoff(base=0.5, factor=2.0, max_attempts=3, seed=9)
        assert [b.next_delay() for _ in range(3)] == [0.5, 1.0, 2.0]

    def test_invalid_jitter_rejected(self):
        with pytest.raises(ValueError):
            SessionBackoff(jitter=1.5)
        with pytest.raises(ValueError):
            SessionBackoff(jitter=-0.1)


# ----------------------------------------------------------------------
# shedding end to end, over real loopback sockets
# ----------------------------------------------------------------------
async def _hold_client(host, port):
    """Open a connection and keep it alive (send one byte so the sim
    leg establishes and the bridge counts as active)."""
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(b"x")
    await writer.drain()
    return reader, writer


async def _close_quietly(writer):
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass


async def _expect_reset(reader):
    """A shed client sees a bare EOF or an outright reset."""
    try:
        data = await asyncio.wait_for(reader.read(-1), 30)
        assert data == b""
    except (ConnectionError, OSError):
        pass


def _shed_total(snap, reason):
    return snap["counters"].get("gw.shed{reason=%s}" % reason, 0)


class TestSheddingEndToEnd:
    def _gateway(self, limits, **kwargs):
        net = build_chain(1, seed=1, accel=True)
        install_echo(net, 1, 7)
        return Gateway(net, [MoteBinding(node_id=1, sim_port=7)],
                       speed=50.0, slack_budget=10.0, limits=limits,
                       **kwargs)

    def test_capacity_cap_sheds_the_excess(self):
        async def scenario():
            gw = self._gateway(GatewayLimits(max_connections=2))
            await gw.start()
            try:
                host, port = gw.endpoint(0)
                keep = [await _hold_client(host, port) for _ in range(2)]
                await asyncio.sleep(0.05)
                reader, writer = await asyncio.open_connection(host, port)
                await _expect_reset(reader)
                await _close_quietly(writer)
                for r, w in keep:
                    await _close_quietly(w)
                await asyncio.sleep(0)
                return gw.sim.metrics.snapshot()
            finally:
                await gw.aclose()

        snap = asyncio.run(scenario())
        assert _shed_total(snap, "capacity") == 1
        assert snap["counters"]["gw.accepted"] == 2

    def test_accept_rate_sheds_the_burst_overflow(self):
        async def scenario():
            gw = self._gateway(
                GatewayLimits(accept_rate=0.01, accept_burst=1))
            await gw.start()
            try:
                host, port = gw.endpoint(0)
                r1, w1 = await _hold_client(host, port)
                reader, writer = await asyncio.open_connection(host, port)
                await _expect_reset(reader)
                await _close_quietly(writer)
                await _close_quietly(w1)
                await asyncio.sleep(0)
                return gw.sim.metrics.snapshot()
            finally:
                await gw.aclose()

        snap = asyncio.run(scenario())
        assert _shed_total(snap, "rate") == 1
        assert snap["counters"]["gw.accepted"] == 1

    def test_open_breaker_sheds_instantly_after_sim_failures(self):
        async def scenario():
            net = build_chain(1, seed=1, accel=True)  # nothing on port 9
            gw = Gateway(
                net, [MoteBinding(node_id=1, sim_port=9)],
                speed=200.0, slack_budget=10.0,
                backoff={"base": 0.02, "factor": 1.0, "max_attempts": 1,
                         "jitter": 0.0},
                limits=GatewayLimits(breaker_threshold=1,
                                     breaker_cooldown=60.0),
            )
            await gw.start()
            try:
                host, port = gw.endpoint(0)
                # first client exhausts its retries -> terminal failure
                reader, writer = await asyncio.open_connection(host, port)
                await _expect_reset(reader)
                await _close_quietly(writer)
                for _ in range(100):
                    snap = gw.sim.metrics.snapshot()
                    if snap["counters"].get("gw.errors"):
                        break
                    await asyncio.sleep(0.05)
                # breaker now open: the next client never reaches the sim
                reader, writer = await asyncio.open_connection(host, port)
                await _expect_reset(reader)
                await _close_quietly(writer)
                await asyncio.sleep(0)
                return gw.sim.metrics.snapshot()
            finally:
                await gw.aclose()

        snap = asyncio.run(scenario())
        assert snap["counters"]["gw.errors"] >= 1
        assert _shed_total(snap, "breaker") >= 1

    def test_establish_timeout_reaps_stuck_session(self):
        async def scenario():
            net = build_chain(1, seed=1, accel=True)  # nothing on port 9
            gw = Gateway(
                net, [MoteBinding(node_id=1, sim_port=9)],
                speed=50.0, slack_budget=10.0,
                # long retry ladder: the bridge sits unestablished in
                # backoff until the reaper's deadline fires
                backoff={"base": 30.0, "factor": 1.0, "max_attempts": 5,
                         "jitter": 0.0},
                limits=GatewayLimits(establish_timeout=0.2,
                                     reap_interval=0.05),
            )
            await gw.start()
            try:
                host, port = gw.endpoint(0)
                reader, writer = await asyncio.open_connection(host, port)
                await _expect_reset(reader)
                await _close_quietly(writer)
                await asyncio.sleep(0)
                return gw.sim.metrics.snapshot(), gw.active_bridges()
            finally:
                await gw.aclose()

        snap, active = asyncio.run(scenario())
        assert _shed_total(snap, "establish_timeout") == 1
        assert active == 0

    def test_idle_timeout_reaps_slow_loris(self):
        async def scenario():
            gw = self._gateway(
                GatewayLimits(idle_timeout=0.2, reap_interval=0.05))
            await gw.start()
            try:
                host, port = gw.endpoint(0)
                reader, writer = await _hold_client(host, port)
                # consume the echo, then go silent and wait to be shot
                await asyncio.wait_for(reader.readexactly(1), 30)
                await _expect_reset(reader)
                await _close_quietly(writer)
                await asyncio.sleep(0)
                return gw.sim.metrics.snapshot(), gw.active_bridges()
            finally:
                await gw.aclose()

        snap, active = asyncio.run(scenario())
        assert _shed_total(snap, "idle") == 1
        assert active == 0

    def test_splice_budget_pauses_then_drains_clean(self):
        async def scenario():
            net = build_chain(1, seed=1, accel=True)
            sink = install_sink(net, 1, 7)
            sink.pause()  # zero-window mote: bytes pile up in the bridge
            gw = Gateway(
                net, [MoteBinding(node_id=1, sim_port=7)],
                speed=50.0, slack_budget=10.0,
                limits=GatewayLimits(splice_budget=2048),
            )
            await gw.start()
            try:
                host, port = gw.endpoint(0)
                payload = bytes(range(256)) * 64  # 16 KiB >> budget
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(payload)
                writer.write_eof()
                await writer.drain()
                # budget must trip while the mote refuses to drain
                for _ in range(100):
                    if gw.splice_used() > 2048:
                        break
                    await asyncio.sleep(0.05)
                paused_snap = gw.sim.metrics.snapshot()
                sink.resume()
                gw.runner.nudge()
                assert await asyncio.wait_for(reader.read(-1), 60) == b""
                await _close_quietly(writer)
                for _ in range(100):
                    if gw.splice_used() == 0 and gw.active_bridges() == 0:
                        break
                    await asyncio.sleep(0.05)
                return (sink, len(payload), paused_snap,
                        gw.splice_used(), gw.sim.metrics.snapshot())
            finally:
                await gw.aclose()

        sink, nbytes, paused_snap, pinned, snap = asyncio.run(scenario())
        assert paused_snap["counters"]["gw.splice_pauses"] >= 1
        assert paused_snap["gauges"]["gw.splice_buffered"] > 0
        assert sink.bytes == nbytes      # every byte arrived after resume
        assert pinned == 0               # and the budget drained to zero
        assert _shed_total(snap, "capacity") == 0  # nobody was shed
