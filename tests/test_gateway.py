"""Gateway-tier tests: pacing math, session backoff, live export, and
real OS-socket loopback bridging end to end.

The end-to-end tests open genuine TCP/UDP sockets on 127.0.0.1 and
drive them against a gateway fronting an accelerated-kernel mesh, so
they exercise the whole stack the CI smoke job gates — just smaller.
"""

import asyncio
import json
import socket
import struct

import pytest

from repro.experiments.topology import build_chain
from repro.gateway import (
    Gateway,
    GatewayLimits,
    LoadgenReport,
    MoteBinding,
    SessionBackoff,
    attach_wired_host,
    install_echo,
    install_sink,
    run_tcp_loadgen,
    run_udp_loadgen,
)
from repro.sim.engine import RealtimePacer, SimulationError, Simulator
from repro.sim.metrics import MetricsRegistry


class FakeClock:
    """A manually advanced wall clock for deterministic pacer tests."""

    def __init__(self, t=100.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt
        return self.t


class TestRealtimePacer:
    def test_mapping_roundtrip(self):
        clock = FakeClock(100.0)
        pacer = RealtimePacer(speed=10.0, clock=clock)
        pacer.resync(5.0)
        clock.advance(2.0)
        # 2 wall seconds at 10x => 20 simulated seconds past the anchor
        assert pacer.sim_due(clock()) == pytest.approx(25.0)
        assert pacer.wall_for(25.0) == pytest.approx(102.0)
        # wall_for is the inverse of sim_due
        assert pacer.sim_due(pacer.wall_for(17.3)) == pytest.approx(17.3)

    def test_on_time_dispatch_is_not_a_violation(self):
        clock = FakeClock()
        pacer = RealtimePacer(speed=1.0, slack_budget=0.25, clock=clock)
        pacer.resync(0.0)
        clock.advance(1.0)
        slack = pacer.observe(1.0, clock())  # due exactly now
        assert slack == pytest.approx(0.0)
        assert pacer.violations == 0
        assert pacer.observations == 1

    def test_late_dispatch_counts_and_exports(self):
        sim = Simulator()
        sim.metrics = MetricsRegistry()
        from repro.sim.trace import TraceBus

        sim.trace_bus = TraceBus(sim)
        clock = FakeClock()
        pacer = RealtimePacer(
            speed=1.0, slack_budget=0.1, clock=clock,
            metrics=sim.metrics, trace_bus=sim.trace_bus,
        )
        pacer.resync(0.0)
        clock.advance(1.0)
        slack = pacer.observe(0.5, clock())  # due 0.5s ago
        assert slack == pytest.approx(0.5)
        assert pacer.violations == 1
        assert pacer.max_slack == pytest.approx(0.5)
        snap = sim.metrics.snapshot()
        assert snap["counters"]["rt.slack_violations"] == 1
        assert snap["gauges"]["rt.slack_last_seconds"] == pytest.approx(0.5)
        assert snap["gauges"]["rt.slack_max_seconds"] == pytest.approx(0.5)
        assert snap["histograms"]["rt.slack_seconds"]["count"] == 1
        kinds = [ev.kind for ev in sim.trace_bus.events]
        assert "slack_violation" in kinds

    def test_resync_forgives_accumulated_lateness(self):
        clock = FakeClock()
        pacer = RealtimePacer(speed=2.0, slack_budget=0.1, clock=clock)
        pacer.resync(0.0)
        clock.advance(10.0)  # hopelessly behind
        pacer.resync(3.0)
        assert pacer.sim_due(clock()) == pytest.approx(3.0)

    def test_stats_shape(self):
        stats = RealtimePacer(speed=4.0, clock=FakeClock()).stats()
        assert set(stats) == {
            "speed", "slack_budget", "last_slack", "max_slack",
            "violations", "observations",
        }
        assert stats["speed"] == 4.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(SimulationError):
            RealtimePacer(speed=0.0)
        with pytest.raises(SimulationError):
            RealtimePacer(speed=-1.0)
        with pytest.raises(SimulationError):
            RealtimePacer(slack_budget=-0.5)


class TestRunRealtime:
    """Blocking real-time dispatch on the engine itself (fake clock)."""

    def test_dispatch_order_matches_plain_run(self):
        clock = FakeClock()
        sim = Simulator()
        fired = []
        for t in (0.1, 0.2, 0.5):
            sim.schedule(t, fired.append, t)
        pacer = sim.run_realtime(
            until=1.0, speed=10.0, clock=clock, sleep=clock.advance,
        )
        assert fired == [0.1, 0.2, 0.5]
        assert sim.now == pytest.approx(1.0)
        assert pacer.violations == 0
        assert pacer.observations >= 3

    def test_slow_dispatch_is_loud(self):
        clock = FakeClock()

        def laggy_sleep(dt):
            clock.advance(dt + 1.0)  # wildly oversleep every wait

        sim = Simulator()
        for t in (0.5, 1.0):
            sim.schedule(t, lambda: None)
        pacer = sim.run_realtime(
            until=1.5, speed=1.0, slack_budget=0.25,
            clock=clock, sleep=laggy_sleep,
        )
        assert pacer.violations >= 1
        assert pacer.max_slack > 0.25


class TestSessionBackoff:
    def test_exponential_growth_clipped_at_ceiling(self):
        b = SessionBackoff(base=0.5, factor=2.0, ceiling=3.0, max_attempts=5)
        assert [b.next_delay() for _ in range(5)] == [0.5, 1.0, 2.0, 3.0, 3.0]
        assert b.exhausted

    def test_exhausted_refuses_further_delays(self):
        b = SessionBackoff(base=0.1, max_attempts=1)
        b.next_delay()
        assert b.exhausted
        with pytest.raises(RuntimeError):
            b.next_delay()

    def test_reset_restarts_the_schedule(self):
        b = SessionBackoff(base=0.25, factor=2.0, max_attempts=2)
        b.next_delay()
        b.next_delay()
        assert b.exhausted
        b.reset()
        assert not b.exhausted
        assert b.next_delay() == 0.25

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            SessionBackoff(base=0.0)
        with pytest.raises(ValueError):
            SessionBackoff(factor=0.5)
        with pytest.raises(ValueError):
            SessionBackoff(max_attempts=0)


class TestLoadgenReport:
    def test_percentile_math(self):
        lat = [i / 100.0 for i in range(1, 101)]  # 0.01 .. 1.00
        report = LoadgenReport.from_latencies(
            "tcp-echo", lat, [], requests=100, concurrency=10,
            wall_seconds=2.0,
        )
        assert report.completed == 100
        assert report.errors == 0
        assert report.p50 <= report.p95 <= report.p99 <= report.max
        assert report.min == pytest.approx(0.01)
        assert report.max == pytest.approx(1.0)
        assert report.mean == pytest.approx(0.505)
        d = report.as_dict()
        assert d["latency"]["p50"] == pytest.approx(report.p50)
        assert "100/100 ok" in report.summary()

    def test_empty_run_reports_zeroes(self):
        report = LoadgenReport.from_latencies(
            "udp-echo", [], ["TimeoutError: x"] * 3,
            requests=3, concurrency=3, wall_seconds=1.0,
        )
        assert report.completed == 0
        assert report.errors == 3
        assert report.p99 == 0.0
        assert report.error_detail == ["TimeoutError: x"]


# ----------------------------------------------------------------------
# end-to-end over real loopback sockets
# ----------------------------------------------------------------------
def _gateway_net(seed=1):
    """One-hop mesh with a cloud uplink; mote 1 runs TCP+UDP echo."""
    net = build_chain(1, seed=seed, accel=True)
    tcp_echo = install_echo(net, 1, 7)
    udp_echo = install_echo(net, 1, 7, kind="udp")
    return net, tcp_echo, udp_echo


class TestGatewayEndToEnd:
    def test_tcp_echo_roundtrip_through_mesh(self, tmp_path):
        async def scenario():
            net, tcp_echo, _ = _gateway_net()
            gw = Gateway(net, [MoteBinding(node_id=1, sim_port=7)],
                         speed=50.0, slack_budget=5.0)
            await gw.start()
            try:
                host, port = gw.endpoint(0)
                payload = b"through-the-mesh-" * 40
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(payload)
                writer.write_eof()
                await writer.drain()
                echoed = await asyncio.wait_for(reader.read(-1), 60)
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass
                await asyncio.sleep(0)
                snap = gw.write_metrics(tmp_path / "gw.json")
                return payload, echoed, tcp_echo, snap, gw.slack_stats()
            finally:
                await gw.aclose()

        payload, echoed, tcp_echo, snap, slack = asyncio.run(scenario())
        assert echoed == payload
        assert tcp_echo.accepted == 1
        assert tcp_echo.bytes_echoed == len(payload)
        assert snap["counters"]["gw.accepted"] == 1
        assert snap["counters"]["gw.bytes_in"] == len(payload)
        assert snap["counters"]["gw.bytes_out"] == len(payload)
        assert snap["histograms"]["gw.connect_seconds"]["count"] == 1
        assert slack["violations"] == 0
        # the artifact on disk is the same snapshot
        on_disk = json.loads((tmp_path / "gw.json").read_text())
        assert on_disk["counters"]["gw.accepted"] == 1

    def test_udp_exchange_roundtrip(self):
        async def scenario():
            net, _, udp_echo = _gateway_net()
            gw = Gateway(
                net,
                [MoteBinding(node_id=1, sim_port=7, kind="udp")],
                speed=50.0, slack_budget=5.0,
            )
            await gw.start()
            try:
                host, port = gw.endpoint(0)
                report = await run_udp_loadgen(
                    host, port, connections=5, timeout=60.0,
                )
                return report, udp_echo, gw.sim.metrics.snapshot()
            finally:
                await gw.aclose()

        report, udp_echo, snap = asyncio.run(scenario())
        assert report.completed == 5
        assert report.errors == 0
        assert udp_echo.datagrams == 5
        assert snap["histograms"]["gw.udp_rtt_seconds"]["count"] == 5

    def test_loadgen_percentiles_against_wired_host(self):
        async def scenario():
            net, _, _ = _gateway_net()
            attach_wired_host(net, 1001)
            install_echo(net, 1001, 7)
            gw = Gateway(net, [MoteBinding(node_id=1001, sim_port=7)],
                         speed=50.0, slack_budget=5.0)
            await gw.start()
            try:
                host, port = gw.endpoint(0)
                return await run_tcp_loadgen(
                    host, port, connections=25, timeout=60.0,
                )
            finally:
                await gw.aclose()

        report = asyncio.run(scenario())
        assert report.completed == 25
        assert report.errors == 0
        assert 0.0 < report.p50 <= report.p95 <= report.p99 <= report.max
        assert "25/25 ok" in report.summary()

    def test_refused_sim_port_retries_then_resets_client(self):
        async def scenario():
            net, _, _ = _gateway_net()  # echo listens on 7, not 9
            gw = Gateway(
                net,
                [MoteBinding(node_id=1, sim_port=9)],
                speed=200.0, slack_budget=10.0,
                backoff={"base": 0.02, "factor": 1.0, "max_attempts": 2},
            )
            await gw.start()
            try:
                host, port = gw.endpoint(0)
                reader, writer = await asyncio.open_connection(host, port)
                try:
                    data = await asyncio.wait_for(reader.read(-1), 30)
                    assert data == b""  # reset may surface as bare EOF
                except ConnectionError:
                    pass
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass
                await asyncio.sleep(0)
                return gw.sim.metrics.snapshot()
            finally:
                await gw.aclose()

        snap = asyncio.run(scenario())
        assert snap["counters"]["gw.session_retries"] == 2
        assert snap["counters"]["gw.errors"] >= 1
        assert snap["gauges"]["gw.active"] == 0

    def test_aclose_tears_down_live_clients(self):
        async def scenario():
            net, _, _ = _gateway_net()
            gw = Gateway(net, [MoteBinding(node_id=1, sim_port=7)],
                         speed=50.0, slack_budget=5.0)
            await gw.start()
            host, port = gw.endpoint(0)
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"still talking")
            await writer.drain()
            await asyncio.sleep(0.05)
            await gw.aclose()  # client never closed first
            assert not gw.runner.running
            try:
                data = await asyncio.wait_for(reader.read(-1), 10)
                assert data in (b"", b"still talking")
            except ConnectionError:
                pass
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            return gw

        gw = asyncio.run(scenario())
        assert len(gw._bridges) == 0
        assert gw.sim.metrics.snapshot()["gauges"]["gw.active"] == 0

    def test_mid_splice_client_disconnect_releases_everything(self):
        """A client that resets mid-upload must leave no state behind:
        no bridge, no pinned splice bytes, sim-side teardown done."""
        async def scenario():
            net = build_chain(1, seed=1, accel=True)
            sink = install_sink(net, 1, 7)
            sink.pause()  # keep bytes in flight inside the bridge
            gw = Gateway(net, [MoteBinding(node_id=1, sim_port=7)],
                         speed=50.0, slack_budget=5.0,
                         limits=GatewayLimits(splice_budget=1 << 20))
            await gw.start()
            try:
                host, port = gw.endpoint(0)
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(bytes(range(256)) * 128)  # 32 KiB
                await writer.drain()
                for _ in range(100):  # some of it must be mid-splice
                    if gw.splice_used() > 0:
                        break
                    await asyncio.sleep(0.05)
                assert gw.splice_used() > 0
                # a genuine RST (linger 0), not a polite FIN — the
                # half-open path is a different, intentional behaviour
                sock = writer.get_extra_info("socket")
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                                struct.pack("ii", 1, 0))
                writer.transport.abort()
                for _ in range(100):
                    if gw.active_bridges() == 0 and gw.splice_used() == 0:
                        break
                    await asyncio.sleep(0.05)
                return (gw.active_bridges(), gw.splice_used(),
                        gw.sim.metrics.snapshot())
            finally:
                await gw.aclose()

        bridges, pinned, snap = asyncio.run(scenario())
        assert bridges == 0
        assert pinned == 0
        assert snap["gauges"]["gw.active"] == 0
        assert snap["gauges"]["gw.splice_buffered"] == 0

    def test_zero_window_mote_stalls_then_completes_upload(self):
        """A paused sink closes its receive window; the upload must
        stall losslessly and finish once the mote drains."""
        async def scenario():
            net = build_chain(1, seed=1, accel=True)
            sink = install_sink(net, 1, 7)
            sink.pause()  # mote advertises zero window once buffers fill
            gw = Gateway(net, [MoteBinding(node_id=1, sim_port=7)],
                         speed=50.0, slack_budget=5.0)
            await gw.start()
            try:
                host, port = gw.endpoint(0)
                payload = bytes(range(256)) * 64  # 16 KiB
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(payload)
                writer.write_eof()
                await writer.drain()
                await asyncio.sleep(0.5)
                stalled = sink.bytes  # nothing consumed while paused
                sink.resume()
                gw.runner.nudge()
                # sink drains, sees the FIN, closes: client gets EOF
                eof = await asyncio.wait_for(reader.read(-1), 60)
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass
                return sink, len(payload), stalled, eof
            finally:
                await gw.aclose()

        sink, nbytes, stalled, eof = asyncio.run(scenario())
        assert stalled == 0
        assert sink.bytes == nbytes
        assert eof == b""

    def test_sink_receives_bulk_upload(self):
        async def scenario():
            net = build_chain(1, seed=1, accel=True)
            sink = install_sink(net, 1, 7)
            gw = Gateway(net, [MoteBinding(node_id=1, sim_port=7)],
                         speed=50.0, slack_budget=5.0)
            await gw.start()
            try:
                host, port = gw.endpoint(0)
                payload = bytes(range(256)) * 32  # 8 KiB
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(payload)
                writer.write_eof()
                await writer.drain()
                # sink closes once the upload (and FIN) land
                await asyncio.wait_for(reader.read(-1), 60)
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass
                return sink, len(payload)
            finally:
                await gw.aclose()

        sink, nbytes = asyncio.run(scenario())
        assert sink.accepted == 1
        assert sink.bytes == nbytes


class TestAttachWiredHost:
    def test_duplicate_and_wireless_topologies_rejected(self):
        net = build_chain(1, seed=1, accel=True)
        attach_wired_host(net, 1001)
        with pytest.raises(ValueError):
            attach_wired_host(net, 1001)  # id already in use
        with pytest.raises(ValueError):
            attach_wired_host(net, 1000)  # the cloud host's own id
        bare = build_chain(1, seed=1, accel=True, with_cloud=False)
        with pytest.raises(ValueError):
            attach_wired_host(bare, 1001)

    def test_binding_kind_validated(self):
        with pytest.raises(ValueError):
            MoteBinding(node_id=1, sim_port=7, kind="sctp")


class TestLiveExport:
    def test_stream_jsonl_tails_events_live(self, tmp_path):
        from repro.sim.trace import TraceBus

        sim = Simulator()
        bus = TraceBus(sim)
        path = tmp_path / "live.jsonl"
        close = bus.stream_jsonl(path)
        bus.emit("rt", -1, "slack_violation", slack=0.5, budget=0.25)
        bus.emit("gw", 1, "accept")
        # flushed per event: both lines visible before close
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert len(lines) == 2
        assert lines[0]["kind"] == "slack_violation"
        close()
        bus.emit("gw", 1, "after-close")  # no longer streamed
        assert len(path.read_text().splitlines()) == 2

    def test_write_json_snapshot(self, tmp_path):
        m = MetricsRegistry()
        m.counter("gw.accepted").inc(3)
        m.gauge("gw.active").set(1.0)
        path = tmp_path / "metrics.json"
        snap = m.write_json(path)
        on_disk = json.loads(path.read_text())
        assert on_disk == snap
        assert on_disk["counters"]["gw.accepted"] == 3
