"""Unit tests for the discrete-event scheduler."""

import pytest

from repro.sim.engine import SimulationError, Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(2.0, order.append, "b")
    sim.schedule(1.0, order.append, "a")
    sim.schedule(3.0, order.append, "c")
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 3.0


def test_ties_break_by_insertion_order():
    sim = Simulator()
    order = []
    for tag in ("first", "second", "third"):
        sim.schedule(1.0, order.append, tag)
    sim.run()
    assert order == ["first", "second", "third"]


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    ev = sim.schedule(1.0, fired.append, "x")
    ev.cancel()
    sim.run()
    assert fired == []
    assert not ev.pending


def test_run_until_stops_and_advances_clock():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(5.0, fired.append, 5)
    sim.run(until=3.0)
    assert fired == [1]
    assert sim.now == 3.0
    sim.run()
    assert fired == [1, 5]


def test_schedule_in_past_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_from_callback():
    sim = Simulator()
    times = []

    def chain(n):
        times.append(sim.now)
        if n > 0:
            sim.schedule(1.0, chain, n - 1)

    sim.schedule(0.0, chain, 3)
    sim.run()
    assert times == [0.0, 1.0, 2.0, 3.0]


def test_stop_halts_run():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(2.0, lambda: sim.stop())
    sim.schedule(3.0, fired.append, 3)
    sim.run()
    assert fired == [1]
    # run can be resumed
    sim.run()
    assert fired == [1, 3]


def test_step_processes_one_event():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(2.0, fired.append, 2)
    assert sim.step()
    assert fired == [1]
    assert sim.step()
    assert fired == [1, 2]
    assert not sim.step()


def test_peek_time_skips_cancelled():
    sim = Simulator()
    ev = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    ev.cancel()
    assert sim.peek_time() == 2.0


def test_pending_count():
    sim = Simulator()
    ev1 = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.pending_count() == 2
    ev1.cancel()
    assert sim.pending_count() == 1
