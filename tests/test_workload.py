"""Workload helpers: goodput meter and bulk-transfer driver."""

import pytest

from repro.core.simplified import tcplp_params
from repro.core.socket_api import TcpStack
from repro.experiments.topology import build_chain, build_pair
from repro.experiments.workload import (
    BulkTransfer,
    FlowSet,
    FlowSpec,
    GoodputMeter,
    SensorStream,
    jain_fairness,
)
from repro.sim.engine import Simulator


class TestGoodputMeter:
    def test_counts_only_after_start(self):
        sim = Simulator()
        meter = GoodputMeter(sim)
        meter.on_data(b"ignored")
        meter.start()
        sim.now = 10.0
        meter.on_data(b"x" * 125)  # 1000 bits over 10 s
        assert meter.goodput_bps() == pytest.approx(100.0)

    def test_first_byte_timestamp(self):
        sim = Simulator()
        meter = GoodputMeter(sim)
        meter.start()
        sim.now = 3.0
        meter.on_data(b"a")
        sim.now = 5.0
        meter.on_data(b"b")
        assert meter.first_byte_at == 3.0

    def test_zero_before_start(self):
        sim = Simulator()
        meter = GoodputMeter(sim)
        assert meter.goodput_bps() == 0.0

    def test_restart_resets(self):
        sim = Simulator()
        meter = GoodputMeter(sim)
        meter.start()
        sim.now = 1.0
        meter.on_data(b"xyz")
        meter.start()
        assert meter.bytes == 0


class TestGoodputMeterWarpInvariance:
    """Hybrid-tier warps must not distort the metering window."""

    def test_foreign_warp_does_not_inflate_elapsed(self):
        # A warp this meter's flow did not participate in (no credit)
        # must leave goodput untouched: the denominator is the
        # warp-invariant clock, not raw sim.now.
        sim = Simulator()
        meter = GoodputMeter(sim)
        meter.start()
        sim.now = 10.0
        meter.on_data(b"x" * 125)  # 1000 bits over 10 s
        assert meter.goodput_bps() == pytest.approx(100.0)
        sim.warp(90.0)  # someone else's fast-forward
        assert meter.elapsed() == pytest.approx(10.0)
        assert meter.goodput_bps() == pytest.approx(100.0)

    def test_credited_warp_extends_window_with_its_bytes(self):
        # A warp that carries this flow's modelled progress books both
        # the bytes and the warped seconds, so the rate stays exact.
        sim = Simulator()
        meter = GoodputMeter(sim)
        meter.start()
        sim.now = 10.0
        meter.on_data(b"x" * 125)
        sim.warp(10.0)
        meter.credit(125, interval=10.0)
        assert meter.elapsed() == pytest.approx(20.0)
        assert meter.goodput_bps() == pytest.approx(100.0)

    def test_restart_clears_credited_warp_time(self):
        sim = Simulator()
        meter = GoodputMeter(sim)
        meter.start()
        sim.warp(5.0)
        meter.credit(10, interval=5.0)
        assert meter.elapsed() == pytest.approx(5.0)
        meter.start()
        assert meter.elapsed() == 0.0
        assert meter.bytes == 0


class TestBulkTransfer:
    def test_measure_reports_consistent_counters(self):
        net = build_pair(seed=20)
        sa = TcpStack(net.sim, net.nodes[0].ipv6, 0)
        sb = TcpStack(net.sim, net.nodes[1].ipv6, 1)
        xfer = BulkTransfer(net.sim, sa, sb, receiver_id=1,
                            params=tcplp_params(),
                            receiver_params=tcplp_params())
        result = xfer.measure(warmup=5.0, duration=20.0)
        assert xfer.connected
        assert result.bytes_delivered > 0
        assert result.goodput_kbps == pytest.approx(
            result.bytes_delivered * 8 / 1000 / result.duration
        )
        assert result.segs_sent > 0
        assert 0.0 <= result.segment_loss <= 1.0
        assert result.rtt_samples, "RTT samples should be collected"

    def test_sender_stays_saturated(self):
        net = build_pair(seed=21)
        sa = TcpStack(net.sim, net.nodes[0].ipv6, 0)
        sb = TcpStack(net.sim, net.nodes[1].ipv6, 1)
        xfer = BulkTransfer(net.sim, sa, sb, receiver_id=1,
                            params=tcplp_params(),
                            receiver_params=tcplp_params())
        net.sim.run(until=10.0)
        conn = xfer.connection
        # window-limited: the send buffer is always full while open
        assert conn.send_buf.free == 0

    def test_two_transfers_need_distinct_ports(self):
        net = build_pair(seed=22)
        sa = TcpStack(net.sim, net.nodes[0].ipv6, 0)
        sb = TcpStack(net.sim, net.nodes[1].ipv6, 1)
        BulkTransfer(net.sim, sa, sb, receiver_id=1, port=9000,
                     params=tcplp_params(), receiver_params=tcplp_params())
        BulkTransfer(net.sim, sa, sb, receiver_id=1, port=9001,
                     params=tcplp_params(), receiver_params=tcplp_params())
        net.sim.run(until=5.0)  # both coexist without port clashes


class TestJainFairness:
    def test_equal_allocation_is_one(self):
        assert jain_fairness([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_single_hog_is_one_over_n(self):
        assert jain_fairness([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_empty_and_all_zero_are_fair(self):
        assert jain_fairness([]) == 1.0
        assert jain_fairness([0.0, 0.0]) == 1.0


class TestSensorStream:
    def test_paced_reports_arrive(self):
        net = build_chain(2, seed=5)
        sa = TcpStack(net.sim, net.nodes[2].ipv6, 2)
        sb = TcpStack(net.sim, net.nodes[0].ipv6, 0)
        stream = SensorStream(net.sim, sa, sb, receiver_id=0,
                              report_bytes=80, interval=1.0,
                              params=tcplp_params(),
                              receiver_params=tcplp_params())
        stream.meter.start()
        net.sim.run(until=12.0)
        assert stream.connected
        assert stream.reports_sent >= 8
        # paced, not saturating: delivered roughly reports * size
        assert stream.meter.bytes <= stream.reports_sent * 80
        assert stream.meter.bytes >= (stream.reports_sent - 3) * 80


class TestFlowSet:
    def test_bulk_flows_measure_and_aggregate(self):
        net = build_chain(3, seed=6)
        specs = [FlowSpec(src=3, dst=0), FlowSpec(src=2, dst=0)]
        flows = FlowSet(net, specs, params=tcplp_params())
        res = flows.measure(warmup=5.0, duration=15.0)
        assert res.flows_connected == 2
        assert res.bytes_delivered > 0
        assert res.aggregate_goodput_bps == pytest.approx(
            sum(f.goodput_bps for f in res.flows))
        assert 0.0 < res.fairness <= 1.0
        assert res.aggregate_goodput_bps == pytest.approx(
            res.bytes_delivered * 8.0 / res.duration)

    def test_ports_default_to_base_plus_index(self):
        net = build_chain(2, seed=7)
        flows = FlowSet(net, [FlowSpec(src=2, dst=0),
                              FlowSpec(src=1, dst=0),
                              FlowSpec(src=2, dst=0, port=7777)],
                        base_port=9100)
        assert flows.ports == [9100, 9101, 7777]

    def test_staggered_launch_waits_for_start(self):
        net = build_chain(2, seed=8)
        flows = FlowSet(net, [FlowSpec(src=2, dst=0, start=4.0)],
                        params=tcplp_params())
        net.sim.run(until=2.0)
        assert flows.drivers[0] is None  # not launched yet
        net.sim.run(until=8.0)
        assert flows.drivers[0] is not None
        assert flows.drivers[0].connected

    def test_flow_never_launched_reports_zero(self):
        net = build_chain(2, seed=9)
        flows = FlowSet(net, [FlowSpec(src=2, dst=0, start=100.0)],
                        params=tcplp_params())
        res = flows.measure(warmup=1.0, duration=5.0)
        assert res.flows[0].connected is False
        assert res.flows[0].goodput_bps == 0.0
        assert res.fairness == 1.0  # all-zero allocation

    def test_mixed_kinds_share_a_node_stack(self):
        net = build_chain(2, seed=10)
        specs = [FlowSpec(src=2, dst=0, kind="bulk"),
                 FlowSpec(src=2, dst=0, kind="sensor", interval=0.5)]
        flows = FlowSet(net, specs, params=tcplp_params())
        res = flows.measure(warmup=4.0, duration=10.0)
        assert flows.stack_for(2) is flows._stacks[2]
        assert len(flows._stacks) == 2  # one per node, not per flow
        assert res.flows_connected == 2
        assert res.flows[1].kind == "sensor"

    def test_invalid_specs_rejected(self):
        net = build_chain(2, seed=11)
        with pytest.raises(ValueError, match="src == dst"):
            FlowSet(net, [FlowSpec(src=1, dst=1)])
        with pytest.raises(ValueError, match="unknown node"):
            FlowSet(net, [FlowSpec(src=1, dst=55)])
        with pytest.raises(ValueError, match="unknown kind"):
            FlowSet(net, [FlowSpec(src=1, dst=0, kind="torrent")])
