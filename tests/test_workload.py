"""Workload helpers: goodput meter and bulk-transfer driver."""

import pytest

from repro.core.simplified import tcplp_params
from repro.core.socket_api import TcpStack
from repro.experiments.topology import build_pair
from repro.experiments.workload import BulkTransfer, GoodputMeter
from repro.sim.engine import Simulator


class TestGoodputMeter:
    def test_counts_only_after_start(self):
        sim = Simulator()
        meter = GoodputMeter(sim)
        meter.on_data(b"ignored")
        meter.start()
        sim.now = 10.0
        meter.on_data(b"x" * 125)  # 1000 bits over 10 s
        assert meter.goodput_bps() == pytest.approx(100.0)

    def test_first_byte_timestamp(self):
        sim = Simulator()
        meter = GoodputMeter(sim)
        meter.start()
        sim.now = 3.0
        meter.on_data(b"a")
        sim.now = 5.0
        meter.on_data(b"b")
        assert meter.first_byte_at == 3.0

    def test_zero_before_start(self):
        sim = Simulator()
        meter = GoodputMeter(sim)
        assert meter.goodput_bps() == 0.0

    def test_restart_resets(self):
        sim = Simulator()
        meter = GoodputMeter(sim)
        meter.start()
        sim.now = 1.0
        meter.on_data(b"xyz")
        meter.start()
        assert meter.bytes == 0


class TestBulkTransfer:
    def test_measure_reports_consistent_counters(self):
        net = build_pair(seed=20)
        sa = TcpStack(net.sim, net.nodes[0].ipv6, 0)
        sb = TcpStack(net.sim, net.nodes[1].ipv6, 1)
        xfer = BulkTransfer(net.sim, sa, sb, receiver_id=1,
                            params=tcplp_params(),
                            receiver_params=tcplp_params())
        result = xfer.measure(warmup=5.0, duration=20.0)
        assert xfer.connected
        assert result.bytes_delivered > 0
        assert result.goodput_kbps == pytest.approx(
            result.bytes_delivered * 8 / 1000 / result.duration
        )
        assert result.segs_sent > 0
        assert 0.0 <= result.segment_loss <= 1.0
        assert result.rtt_samples, "RTT samples should be collected"

    def test_sender_stays_saturated(self):
        net = build_pair(seed=21)
        sa = TcpStack(net.sim, net.nodes[0].ipv6, 0)
        sb = TcpStack(net.sim, net.nodes[1].ipv6, 1)
        xfer = BulkTransfer(net.sim, sa, sb, receiver_id=1,
                            params=tcplp_params(),
                            receiver_params=tcplp_params())
        net.sim.run(until=10.0)
        conn = xfer.connection
        # window-limited: the send buffer is always full while open
        assert conn.send_buf.free == 0

    def test_two_transfers_need_distinct_ports(self):
        net = build_pair(seed=22)
        sa = TcpStack(net.sim, net.nodes[0].ipv6, 0)
        sb = TcpStack(net.sim, net.nodes[1].ipv6, 1)
        BulkTransfer(net.sim, sa, sb, receiver_id=1, port=9000,
                     params=tcplp_params(), receiver_params=tcplp_params())
        BulkTransfer(net.sim, sa, sb, receiver_id=1, port=9001,
                     params=tcplp_params(), receiver_params=tcplp_params())
        net.sim.run(until=5.0)  # both coexist without port clashes
